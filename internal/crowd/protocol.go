// Package crowd implements the crowd sensing system of the paper's
// Section 2 as a real client/server application: an untrusted aggregation
// server that publishes micro-tasks and the perturbation hyper-parameter
// lambda2, and user clients that perturb their readings locally (the only
// place original data ever exists) before submitting them over HTTP/JSON.
// This realizes Algorithm 2 end to end:
//
//  1. the server publishes the campaign (micro-tasks + lambda2),
//  2. each user samples delta_s^2 ~ Exp(lambda2) on-device,
//  3. each user perturbs readings with N(0, delta_s^2) noise,
//  4. users submit only perturbed claims,
//  5. the server runs weighted truth discovery once enough users reported.
//
// # Streaming campaigns
//
// Beyond the one-shot campaign above, the package serves continuous
// streams through internal/stream (see StreamServer):
//
//   - GET  /v1/stream/campaign publishes the stream metadata (objects,
//     lambda2, shard count, per-window epsilon/delta and budget);
//   - POST /v1/stream/claims ingests one client's batch of perturbed
//     claims into the open window (400 on malformed claims, 409 on a
//     second submission into the same open window when accounting is
//     enabled, 429 once the client's cumulative privacy budget is
//     exhausted);
//   - POST /v1/stream/window closes the open window, re-estimates truths
//     and weights incrementally from the decayed sufficient statistics —
//     using the engine's configured estimator (CRH, GTM, or CATD; the
//     campaign, stats, and every window result name it) — and returns
//     the estimate (409 before any claim ever arrived);
//   - GET  /v1/stream/truths serves the latest closed window's estimate
//     as a live snapshot (404 until the first window ever closes — "not
//     ready" is a missing resource; 409 is reserved for real conflicts
//     like a duplicate same-window submission or closing an empty
//     window; the one-shot GET /v1/result answers pending aggregation
//     with 404 the same way). With ?window=N it serves one specific
//     recent window from the engine's bounded result history
//     (stream.Config.HistoryWindows); a window never closed or already
//     evicted answers 404 with code "unknown_window". With persistence
//     configured both reads survive restarts: a recovered server serves
//     the persisted results immediately rather than 404 until the next
//     close;
//   - GET  /v1/stream/stats serves observability counters: engine
//     totals, the answerable history bounds, and — on a durable server —
//     the store's journal counters and group-commit batch-size /
//     flush-latency histograms. With ?reset=1 the windowed counters and
//     histograms restart from this read; gauges (journal bytes, live
//     segments) always describe the present and survive the reset.
//
// Windows close on explicit POST /v1/stream/window, or automatically on
// a ticker when StreamServerConfig.WindowInterval is set; both paths
// serialize with each other and with persistence snapshots.
//
// # Error envelope
//
// Every non-2xx response across batch and streaming endpoints carries
// the same versioned JSON envelope (ErrorBody): {v, code, message,
// retry_after_windows?}. The code (see the Code* constants in
// errors.go) is the stable contract — HTTP statuses are derived from it
// in one place (errorStatus) — and Client decodes it back into the
// matching typed sentinel, so errors.Is(err, stream.ErrBudgetExhausted)
// and errors.As(err, &httpErr) both work on one returned error.
// docs/API.md at the repository root tabulates every code.
//
// Clients keep perturbing locally exactly as in the one-shot flow; the
// streaming server additionally meters each client's cumulative
// (epsilon, delta) spending. The accounting unit is the release unit:
// each window's epsilon pays for exactly one submission per client, with
// at most one claim per object, and a second submission into the same
// open window is rejected (409) instead of being silently averaged in —
// otherwise k same-window submissions would cut the effective noise by
// about sqrt(k) while paying a single epsilon. Both epsilon and delta
// compose linearly across the windows a client is charged for; the
// per-window privacy report carries the basic-composition totals
// (MaxCumulative, CumulativeDelta). User.ParticipateStream honors the
// one-submission-per-window contract on-device, skipping (ErrSameWindow)
// before a second noisy release of the same window is even generated.
//
// # Request correlation
//
// Every response — success or error envelope — carries an X-Request-ID
// header: the client's, when the request supplied a valid one, or a
// freshly generated ID otherwise (see HeaderRequestID). The Client
// stamps one on every request it issues and surfaces the server's echo
// on failures via HTTPError.RequestID, so a failing call can be joined
// against the node's structured request logs. Non-2xx responses
// additionally carry the envelope code in the X-Error-Code header,
// which the node's metrics middleware turns into per-code error
// counters without any handler plumbing.
//
// # Privacy reports on the wire
//
// Privacy reports ship aggregates only by default (MaxCumulative,
// MaxWindows, CumulativeDelta, TrackedUsers, ExhaustedUsers): the
// per-user epsilon map is the complete historical client-ID roster —
// O(users) to serialize on every window close and truths poll, and
// participation metadata any poller could harvest. Deployments that want
// it (trusted dashboards, small fleets) opt in with
// stream.Config.PerUserReport on StreamServerConfig.Engine.
//
// # Durability
//
// With StreamServerConfig.Persistence set (an internal/streamstore
// store), the accounting ledger outlives the process: every accepted
// charge is appended to an fsync'd journal before the submission receipt
// is returned — concurrent submissions share group-commit batches, so
// the durable path scales with load instead of serializing on the disk —
// and NewStreamServer recovers snapshot-plus-journal on startup. A crash
// never loses an acknowledged epsilon charge, and a user who exhausted
// their budget stays exhausted across restarts. With
// stream.Config.ClaimWAL the journal record additionally carries the
// submission's claims, so the sufficient statistics are exactly as
// durable as the budget and a kill-and-recover server matches an
// uninterrupted one; without it a crash still loses claims accepted
// after the last snapshot (privacy-conservative: the charge stands, the
// data is gone).
//
// Each window close persists its published result and snapshots the
// engine per the store's cadence (streamstore.Options.SnapshotEvery,
// SnapshotBytes); a graceful Close always writes a final snapshot. After
// a restart GET /v1/stream/truths serves the persisted last result
// immediately — 404 only before the first window ever closed. See
// docs/DURABILITY.md at the repository root for the full crash-recovery
// contract.
//
// A durable stream server also wires the store in as the engine's user
// spill store (stream.Config.UserStore), so a residency-capped engine
// (stream.Config.MaxResidentUsers / ResidentBytes) evicts idle users to
// disk at window close and re-admits them transparently on their next
// claim — a budget-exhausted user stays rejected (429) across eviction,
// re-admission, and restart alike. GET /v1/stream/stats reports the
// live resident count and cap.
//
// The one-shot batch campaign persists through the same store when
// ServerConfig.Persistence is set: every accepted submission is fsync'd
// to a WAL before its receipt (the duplicate-client guard survives a
// crash) and the aggregated result is persisted before it is first
// published, so a restarted server still refuses re-submission and
// serves the same result.
package crowd

import (
	"fmt"

	"pptd/internal/obs"
	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// Wire paths served by the campaign server.
const (
	// PathCampaign serves campaign metadata (GET).
	PathCampaign = "/v1/campaign"
	// PathSubmissions accepts perturbed claim batches (POST).
	PathSubmissions = "/v1/submissions"
	// PathResult serves the aggregated result (GET), 404 until ready.
	PathResult = "/v1/result"
	// PathAggregate forces aggregation of whatever was submitted (POST).
	PathAggregate = "/v1/aggregate"

	// PathStreamCampaign serves streaming campaign metadata (GET).
	PathStreamCampaign = "/v1/stream/campaign"
	// PathStreamClaims accepts batched perturbed claims for the open
	// window (POST).
	PathStreamClaims = "/v1/stream/claims"
	// PathStreamTruths serves the latest closed window's estimate (GET),
	// 404 until the first window ever closes (a persistent server serves
	// the recovered result across restarts).
	PathStreamTruths = "/v1/stream/truths"
	// PathStreamWindow closes the open window and returns its estimate
	// (POST).
	PathStreamWindow = "/v1/stream/window"
	// PathStreamStats serves ingest/persistence observability counters
	// (GET): engine totals plus, on a durable server, the store's journal
	// counters and group-commit batch-size / flush-latency histograms.
	// With ?reset=1 the windowed counters and histograms restart from
	// this read (gauges — JournalBytes, Segments — always describe the
	// present and survive the reset, as does the flush-latency Max
	// high-water mark).
	PathStreamStats = "/v1/stream/stats"

	// PathClusterClose is the worker-side cluster RPC that quiesces the
	// open window and exports its raw sufficient statistics to the
	// coordinator without estimating (POST; see
	// StreamServer.RegisterCluster). Mounted only on cluster workers.
	PathClusterClose = "/v1/cluster/close"
	// PathClusterCommit is the worker-side cluster RPC that commits the
	// coordinator's merged per-user carry weights and estimator state
	// back onto the worker after a cluster-wide window close (POST).
	PathClusterCommit = "/v1/cluster/commit"
	// PathClusterStatus serves the worker's cluster close-protocol
	// position (GET): closed-window count, the window of its cached
	// export, and the last committed window. A booting coordinator reads
	// it to detect a close round that was interrupted mid-commit and must
	// be re-driven before serving.
	PathClusterStatus = "/v1/cluster/status"

	// PathMetrics is where a pptd Node exposes the Prometheus text
	// rendition of every registered metric (GET). The crowd servers do
	// not mount it themselves — the Node does, over the same registry the
	// engine and store publish into — but the path constant lives here
	// with the rest of the wire contract. It sits outside the /v1 prefix:
	// scrapers expect the conventional path, and the exposition format is
	// versioned by its content type, not by the URL.
	PathMetrics = "/metrics"
)

// Request-correlation headers, shared with internal/obs. Clients may
// send an X-Request-ID; the server echoes it (generating one when the
// request carried none or an invalid one) on every response, including
// error envelopes, so a failing request can be joined against the
// node's structured logs. X-Error-Code carries the envelope's stable
// error code on every non-2xx response, readable without parsing the
// body.
const (
	HeaderRequestID = obs.HeaderRequestID
	HeaderErrorCode = obs.HeaderErrorCode
)

// Envelope version negotiation headers. A client advertises the error
// envelope versions it can decode in HeaderAcceptEnvelope (a
// comma-separated list of integers, e.g. "1" or "1,2"); every response
// carries HeaderEnvelopeVersion with the version the server selected —
// the highest advertised version the server supports, or the server's
// current version (ErrorEnvelopeVersion) when the request carried no
// intelligible advertisement. Version 1 is the floor: a future "v": 2
// envelope will only be emitted to clients that advertised 2, so old
// clients keep decoding v1 envelopes unchanged.
const (
	HeaderAcceptEnvelope  = "X-PPTD-Accept-Envelope"
	HeaderEnvelopeVersion = "X-PPTD-Envelope-Version"
)

// CampaignInfo is the public description of a sensing campaign.
type CampaignInfo struct {
	// Name labels the campaign.
	Name string `json:"name"`
	// NumObjects is the number of micro-tasks (objects) to report on.
	NumObjects int `json:"numObjects"`
	// Lambda2 is the server-released rate for the noise-variance
	// distribution each user samples from.
	Lambda2 float64 `json:"lambda2"`
	// ExpectedUsers is the submission count that triggers aggregation.
	ExpectedUsers int `json:"expectedUsers"`
	// SubmittedUsers is how many users have submitted so far.
	SubmittedUsers int `json:"submittedUsers"`
	// Aggregated reports whether the result is available.
	Aggregated bool `json:"aggregated"`
}

// Claim is a single (object, value) report inside a submission. Values
// must already be perturbed by the client.
type Claim struct {
	Object int     `json:"object"`
	Value  float64 `json:"value"`
}

// Submission is the body of POST /v1/submissions.
type Submission struct {
	// ClientID identifies the submitting device; one submission per ID.
	ClientID string `json:"clientId"`
	// Claims holds the perturbed readings.
	Claims []Claim `json:"claims"`
}

// SubmissionReceipt is the response to a successful submission.
type SubmissionReceipt struct {
	// Accepted echoes the number of stored claims.
	Accepted int `json:"accepted"`
	// SubmittedUsers is the submission count after this one.
	SubmittedUsers int `json:"submittedUsers"`
	// Aggregated reports whether this submission triggered aggregation.
	Aggregated bool `json:"aggregated"`
}

// ResultInfo is the response of GET /v1/result once aggregation ran.
type ResultInfo struct {
	// Truths holds the aggregated value per object.
	Truths []float64 `json:"truths"`
	// Weights holds the estimated weight per submitting user, keyed by
	// client ID. Weights reveal only aggregate reliability on perturbed
	// data, never original readings.
	Weights map[string]float64 `json:"weights"`
	// Method names the truth-discovery algorithm used.
	Method string `json:"method"`
	// Iterations and Converged mirror the truth.Result metadata.
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
}

// StreamCampaignInfo is the public description of a streaming campaign
// (GET /v1/stream/campaign).
type StreamCampaignInfo struct {
	// Name labels the campaign.
	Name string `json:"name"`
	// NumObjects is the number of micro-tasks (objects) in the stream.
	NumObjects int `json:"numObjects"`
	// Lambda2 is the server-released perturbation rate users sample
	// their noise variances with (0 if the campaign does not publish one).
	Lambda2 float64 `json:"lambda2"`
	// Estimator names the truth-discovery estimator the stream runs
	// ("crh", "gtm", or "catd" — see stream.EstimatorNames).
	Estimator string `json:"estimator"`
	// Shards is the engine's ingestion shard count.
	Shards int `json:"shards"`
	// Window is the number of closed windows so far.
	Window int `json:"window"`
	// TotalClaims counts every claim accepted over the stream.
	TotalClaims int64 `json:"totalClaims"`
	// EpsilonPerWindow and Delta describe the per-window privacy charge;
	// both are 0 when accounting is disabled. EpsilonBudget is the
	// enforced cumulative cap (0 = tracking only).
	EpsilonPerWindow float64 `json:"epsilonPerWindow"`
	Delta            float64 `json:"delta"`
	EpsilonBudget    float64 `json:"epsilonBudget"`
}

// StreamReceipt is the response to a successful POST /v1/stream/claims.
type StreamReceipt struct {
	// Accepted echoes the number of ingested claims.
	Accepted int `json:"accepted"`
	// Window is the 1-based index of the open window the batch joined.
	Window int `json:"window"`
	// TotalClaims counts every claim accepted over the stream so far.
	TotalClaims int64 `json:"totalClaims"`
}

// StreamWindowInfo is one closed window's estimate, served by
// GET /v1/stream/truths and POST /v1/stream/window.
type StreamWindowInfo struct {
	// Window is the 1-based index of the closed window.
	Window int `json:"window"`
	// Truths holds the estimated truth per object; entries whose Covered
	// flag is false carry 0 and mean "no data", since JSON has no NaN.
	Truths []float64 `json:"truths"`
	// Covered marks objects with at least one live statistic.
	Covered []bool `json:"covered"`
	// Weights holds the estimated weight per active user, keyed by
	// client ID. As in the batch campaign, weights reveal only aggregate
	// reliability on perturbed data.
	Weights map[string]float64 `json:"weights"`
	// Estimator names the estimator that produced this window's estimate
	// ("" on results persisted before estimators were recorded = CRH).
	Estimator string `json:"estimator,omitempty"`
	// Iterations and Converged describe the window's estimation loop.
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	// ActiveUsers is the number of users with live statistics;
	// WindowClaims and TotalClaims count ingested claims.
	ActiveUsers  int   `json:"activeUsers"`
	WindowClaims int64 `json:"windowClaims"`
	TotalClaims  int64 `json:"totalClaims"`
	// Privacy summarizes cumulative budget spending; omitted when
	// accounting is disabled. It carries aggregates only unless the
	// engine opted into the per-user map (stream.Config.PerUserReport).
	Privacy *stream.PrivacyReport `json:"privacy,omitempty"`
}

// StreamStatsInfo is the response of GET /v1/stream/stats: the engine's
// headline counters plus, on a durable server, the store's journal and
// group-commit observability (batch-size and flush-latency histograms —
// the data for tuning streamstore.Options.FlushInterval / MaxBatch
// against observed load).
type StreamStatsInfo struct {
	// Name labels the campaign.
	Name string `json:"name"`
	// Estimator names the engine's configured truth-discovery estimator.
	Estimator string `json:"estimator"`
	// Window is the number of closed windows; TotalClaims counts every
	// claim accepted over the stream.
	Window      int   `json:"window"`
	TotalClaims int64 `json:"totalClaims"`
	// HistoryWindows is the capacity of the retained result ring backing
	// GET /v1/stream/truths?window=N; HistoryOldest is the oldest window
	// currently answerable (0 when none is retained).
	HistoryWindows int `json:"historyWindows"`
	HistoryOldest  int `json:"historyOldest"`
	// ResidentUsers is the number of users the engine currently holds in
	// memory; MaxResidentUsers is the configured residency cap (0 =
	// unbounded). Both are gauges read live from the engine, so ?reset=1
	// never zeroes them — evicted users are not forgotten, just spilled
	// to the store.
	ResidentUsers    int `json:"residentUsers"`
	MaxResidentUsers int `json:"maxResidentUsers"`
	// Durable reports whether the server persists through a stream store;
	// Store carries the store's counters when it does.
	Durable bool                    `json:"durable"`
	Store   *streamstore.StoreStats `json:"store,omitempty"`
}

// ErrorEnvelopeVersion is the current version of the JSON error
// envelope. It only moves when a field changes meaning; adding optional
// fields does not bump it.
const ErrorEnvelopeVersion = 1

// ErrorBody is the versioned JSON error envelope every non-2xx response
// carries, across batch and streaming endpoints alike. Clients branch on
// Code (stable, machine-readable — see the Code* constants) rather than
// on Message or on the HTTP status.
type ErrorBody struct {
	// V is the envelope version (ErrorEnvelopeVersion).
	V int `json:"v"`
	// Code is the stable machine-readable error code.
	Code string `json:"code"`
	// Message is the human-readable error description.
	Message string `json:"message"`
	// RetryAfterWindows, when positive, hints how many window closes the
	// client should wait before retrying (1 on duplicate_window: the
	// charge blocking the user expires when the open window closes).
	RetryAfterWindows int `json:"retry_after_windows,omitempty"`
	// Error duplicates Message for pre-envelope clients that decoded
	// {"error": ...}.
	//
	// Deprecated: read Message (and branch on Code) instead.
	Error string `json:"error,omitempty"`
}

// HTTPError reports a non-2xx response from the campaign server. The
// Client additionally unwraps the envelope's code into the matching
// typed sentinel (ErrNotReady, stream.ErrDuplicateWindow, ...), so
// errors.Is against package sentinels and errors.As against *HTTPError
// both work on the same returned error.
type HTTPError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the envelope's machine-readable error code ("" from a
	// pre-envelope server).
	Code string
	// Message is the server-provided error string, if any.
	Message string
	// RetryAfterWindows is the envelope's retry hint (0 = none).
	RetryAfterWindows int
	// RequestID is the correlation ID the server echoed on the failed
	// response (X-Request-ID) — quote it when reporting the failure, it
	// joins against the node's structured request logs. Empty from a
	// server predating the echo contract.
	RequestID string
}

// Error implements error.
func (e *HTTPError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("crowd: server returned status %d", e.StatusCode)
	}
	return fmt.Sprintf("crowd: server returned status %d: %s", e.StatusCode, e.Message)
}
