package crowd

import (
	"errors"
	"fmt"
	"net/http"

	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// ErrUnknownWindow reports a history read (GET /v1/stream/truths?window=N)
// for a window that never closed or that the bounded result history has
// already evicted. It is distinct from ErrNotReady — the stream may be
// perfectly live; this particular window is just not retained.
var ErrUnknownWindow = errors.New("crowd: window not in retained history")

// ErrWorkerUnavailable reports that a cluster coordinator could not
// reach the worker owning the request's user shard. The claim was not
// ingested anywhere; retrying once the worker is back succeeds with no
// duplicate-submission risk.
var ErrWorkerUnavailable = errors.New("crowd: shard worker unavailable")

// ErrPayloadTooLarge reports a request body over the route's size cap
// (see DefaultMaxRequestBytes and the servers' MaxRequestBytes
// options). The request was refused before being buffered; nothing was
// ingested. Splitting the submission into smaller batches succeeds.
var ErrPayloadTooLarge = errors.New("crowd: request body too large")

// Machine-readable error codes carried by every non-2xx response across
// the batch and streaming endpoints (ErrorBody.Code). Codes are the
// stable contract: HTTP status codes are derived from them and clients
// should branch on the code (or on the typed errors the Client decodes
// them into), never on the message text.
const (
	// CodeBadRequest: the request body or query is malformed — an
	// undecodable JSON body, an out-of-range object index, a non-finite
	// value, a duplicate object within one batch, or a bad ?window=
	// parameter. HTTP 400.
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: the endpoint exists but not for this HTTP
	// method. HTTP 405.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound: no route is mounted at this path (the unified Node
	// front door serves the envelope even for unknown paths). HTTP 404.
	CodeNotFound = "not_found"
	// CodeNotReady: the requested artifact (batch result, latest stream
	// estimate) does not exist yet. HTTP 404.
	CodeNotReady = "not_ready"
	// CodeUnknownWindow: an explicit ?window=N history read for a window
	// that never closed or was evicted from the bounded ring. HTTP 404.
	CodeUnknownWindow = "unknown_window"
	// CodeDuplicateClient: a second batch-campaign submission from the
	// same client ID. HTTP 409.
	CodeDuplicateClient = "duplicate_client"
	// CodeDuplicateWindow: a second streaming submission from the same
	// user into one open window while privacy accounting is enabled; the
	// envelope carries RetryAfterWindows = 1. HTTP 409.
	CodeDuplicateWindow = "duplicate_window"
	// CodeEmptyWindow: a window close before any claim ever arrived.
	// HTTP 409.
	CodeEmptyWindow = "empty_window"
	// CodeEmptyCampaign: an explicit POST /v1/aggregate before anything
	// was submitted — the request conflicts with campaign state (a
	// pending GET /v1/result is CodeNotReady instead). HTTP 409.
	CodeEmptyCampaign = "empty_campaign"
	// CodeCampaignClosed: a batch submission after aggregation. HTTP 410.
	CodeCampaignClosed = "campaign_closed"
	// CodeEngineClosed: the streaming engine behind the endpoint has shut
	// down. HTTP 410.
	CodeEngineClosed = "engine_closed"
	// CodeBudgetExhausted: the user's cumulative privacy budget cannot
	// afford another window. HTTP 429.
	CodeBudgetExhausted = "budget_exhausted"
	// CodeUnauthorized: the request is missing (or carries the wrong)
	// shared bearer token a protected route requires — today the cluster
	// follower's replication endpoints. HTTP 401.
	CodeUnauthorized = "unauthorized"
	// CodePayloadTooLarge: the request body exceeds the route's size cap
	// (the follower's file endpoint refuses bodies over its per-file
	// limit before buffering them). HTTP 413.
	CodePayloadTooLarge = "payload_too_large"
	// CodeWorkerUnavailable: a cluster coordinator could not reach the
	// worker owning this user's shard; the message names the worker. The
	// claim was not ingested — retry when the worker recovers. HTTP 503.
	CodeWorkerUnavailable = "worker_unavailable"
	// CodeInternal: an unexpected server-side failure (for a durable
	// deployment, typically a persistence error). HTTP 500.
	CodeInternal = "internal"
)

// errorStatus maps one server-side error to its wire form: the stable
// envelope code, the HTTP status derived from it, and the retry hint in
// windows (0 = no hint). It is the single place the error taxonomy lives,
// so batch and streaming handlers cannot drift apart.
func errorStatus(err error) (status int, code string, retryAfterWindows int) {
	switch {
	case errors.Is(err, ErrBadSubmission), errors.Is(err, stream.ErrBadClaim):
		return http.StatusBadRequest, CodeBadRequest, 0
	case errors.Is(err, ErrUnknownWindow):
		return http.StatusNotFound, CodeUnknownWindow, 0
	case errors.Is(err, ErrNotReady):
		return http.StatusNotFound, CodeNotReady, 0
	case errors.Is(err, ErrDuplicateClient):
		return http.StatusConflict, CodeDuplicateClient, 0
	case errors.Is(err, stream.ErrDuplicateWindow):
		// The charge that blocks this user expires when the open window
		// closes: retrying one window later succeeds.
		return http.StatusConflict, CodeDuplicateWindow, 1
	case errors.Is(err, stream.ErrEmptyWindow):
		return http.StatusConflict, CodeEmptyWindow, 0
	case errors.Is(err, ErrCampaignClosed):
		return http.StatusGone, CodeCampaignClosed, 0
	case errors.Is(err, stream.ErrEngineClosed), errors.Is(err, streamstore.ErrClosed):
		return http.StatusGone, CodeEngineClosed, 0
	case errors.Is(err, stream.ErrBudgetExhausted):
		return http.StatusTooManyRequests, CodeBudgetExhausted, 0
	case errors.Is(err, ErrPayloadTooLarge):
		return http.StatusRequestEntityTooLarge, CodePayloadTooLarge, 0
	case errors.Is(err, ErrWorkerUnavailable):
		return http.StatusServiceUnavailable, CodeWorkerUnavailable, 0
	default:
		return http.StatusInternalServerError, CodeInternal, 0
	}
}

// sentinelByCode is the client-side inverse of errorStatus: the typed
// error a decoded envelope code unwraps to, so callers can match with
// errors.Is against package sentinels instead of inspecting codes or
// status numbers.
var sentinelByCode = map[string]error{
	CodeBadRequest:        ErrBadSubmission,
	CodeNotReady:          ErrNotReady,
	CodeUnknownWindow:     ErrUnknownWindow,
	CodeDuplicateClient:   ErrDuplicateClient,
	CodeDuplicateWindow:   stream.ErrDuplicateWindow,
	CodeEmptyWindow:       stream.ErrEmptyWindow,
	CodeEmptyCampaign:     ErrNotReady,
	CodeCampaignClosed:    ErrCampaignClosed,
	CodeEngineClosed:      stream.ErrEngineClosed,
	CodeBudgetExhausted:   stream.ErrBudgetExhausted,
	CodePayloadTooLarge:   ErrPayloadTooLarge,
	CodeWorkerUnavailable: ErrWorkerUnavailable,
}

// writeAPIError answers one failed request with the versioned envelope,
// deriving status, code, and retry hint from the error taxonomy.
func writeAPIError(w http.ResponseWriter, err error) {
	status, code, retry := errorStatus(err)
	writeEnvelope(w, status, code, err.Error(), retry)
}

// writeError emits the envelope for handler-level failures that carry no
// taxonomy error (method mismatches, undecodable bodies).
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeEnvelope(w, status, code, msg, 0)
}

// writeDecodeError answers a failed request-body decode: a body-cap hit
// (http.MaxBytesReader's error anywhere in the chain) is the 413
// payload_too_large envelope, anything else a plain 400. Every POST
// handler funnels its decode failures through here so the cap speaks
// one wire contract across routes and wire formats.
func writeDecodeError(w http.ResponseWriter, what string, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		writeError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
			fmt.Sprintf("%s: request body exceeds the %d-byte route cap", what, maxErr.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("%s: %v", what, err))
}

func writeEnvelope(w http.ResponseWriter, status int, code, msg string, retry int) {
	// Mirror the envelope's code into a response header: header-only
	// clients (and the node's metrics middleware, which counts envelope
	// emissions per code) can read it without parsing the body.
	w.Header().Set(HeaderErrorCode, code)
	writeJSON(w, status, ErrorBody{
		V:                 ErrorEnvelopeVersion,
		Code:              code,
		Message:           msg,
		RetryAfterWindows: retry,
		Error:             msg,
	})
}

// GetOnly restricts h to the GET method, answering anything else with
// the JSON error envelope (code "method_not_allowed"), and echoes the
// request-correlation header like every registered route. It keeps
// non-JSON endpoints mounted next to the API — the node's /metrics
// exposition, debug handlers — on the same error contract.
func GetOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(echoRequestID(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
			return
		}
		h.ServeHTTP(w, r)
	}))
}

// NotFoundHandler serves the JSON error envelope for paths no route is
// mounted at, so even a miss against the unified front door speaks the
// same wire contract as every real endpoint.
func NotFoundHandler() http.Handler {
	return http.HandlerFunc(echoRequestID(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, "no route for "+r.URL.Path)
	}))
}
