package floorplan

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/truth"
)

func TestGenerateDefaultShape(t *testing.T) {
	inst, err := Generate(Default(), randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Dataset.NumUsers() != 247 || inst.Dataset.NumObjects() != 129 {
		t.Fatalf("dims = (%d, %d)", inst.Dataset.NumUsers(), inst.Dataset.NumObjects())
	}
	if len(inst.SegmentLengths) != 129 || len(inst.UserBiases) != 247 || len(inst.UserBiasStds) != 247 {
		t.Fatal("latent vectors have wrong lengths")
	}
	for _, l := range inst.SegmentLengths {
		if l < 5 || l > 50 {
			t.Fatalf("segment length %v outside [5, 50]", l)
		}
	}
	// ~40% coverage.
	total := 247 * 129
	obs := inst.Dataset.NumObservations()
	if obs < total/4 || obs > total*6/10 {
		t.Fatalf("coverage %d/%d far from the configured 40%%", obs, total)
	}
}

func TestGenerateEverySegmentCovered(t *testing.T) {
	cfg := Default()
	cfg.WalkProb = 0.02 // aggressive sparsity to stress the coverage fix-up
	cfg.NumUsers = 20
	inst, err := Generate(cfg, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < cfg.NumSegments; n++ {
		claims, err := inst.Dataset.ObjectObservations(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(claims) == 0 {
			t.Fatalf("segment %d uncovered", n)
		}
	}
}

func TestGenerateReportsNonNegative(t *testing.T) {
	cfg := Default()
	cfg.BiasStdHigh = 0.8 // extreme biases could push reports negative
	cfg.CountNoise = 0.5
	inst, err := Generate(cfg, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range inst.Dataset.Observations() {
		if o.Value < 0 {
			t.Fatalf("negative distance report %v", o.Value)
		}
	}
}

func TestGenerateQualitySpreadDrivesWeights(t *testing.T) {
	// Users with small bias std should earn higher CRH weights than
	// users with large bias std, on average.
	inst, err := Generate(Default(), randx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	crh, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	res, err := crh.Run(inst.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	var goodW, badW stats.Welford
	for s, bs := range inst.UserBiasStds {
		switch {
		case bs < 0.04:
			goodW.Add(res.Weights[s])
		case bs > 0.09:
			badW.Add(res.Weights[s])
		}
	}
	if goodW.N() == 0 || badW.N() == 0 {
		t.Fatal("quality buckets empty; adjust thresholds")
	}
	if goodW.Mean() <= badW.Mean() {
		t.Fatalf("good users mean weight %v <= bad users %v", goodW.Mean(), badW.Mean())
	}
}

func TestTruthDiscoveryRecoverLengths(t *testing.T) {
	inst, err := Generate(Default(), randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	crh, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	res, err := crh.Run(inst.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	mae, err := stats.MAE(res.Truths, inst.SegmentLengths)
	if err != nil {
		t.Fatal(err)
	}
	// Multiplicative bias floors accuracy around CountNoise*L; anything
	// under half a meter on 5-50 m segments is a faithful recovery.
	if mae > 0.5 {
		t.Fatalf("CRH MAE on floorplan = %v m", mae)
	}
}

func TestGenerateValidation(t *testing.T) {
	base := Default()
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero users", mutate: func(c *Config) { c.NumUsers = 0 }},
		{name: "zero segments", mutate: func(c *Config) { c.NumSegments = 0 }},
		{name: "bad lengths", mutate: func(c *Config) { c.MaxLength = c.MinLength }},
		{name: "negative bias", mutate: func(c *Config) { c.BiasStdLow = -0.1 }},
		{name: "inverted bias range", mutate: func(c *Config) { c.BiasStdHigh = c.BiasStdLow - 0.01 }},
		{name: "negative count noise", mutate: func(c *Config) { c.CountNoise = -1 }},
		{name: "bad walk prob", mutate: func(c *Config) { c.WalkProb = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Generate(cfg, randx.New(1)); !errors.Is(err, ErrBadConfig) {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := Generate(base, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("nil rng accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Default(), randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default(), randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.SegmentLengths[0]-b.SegmentLengths[0]) != 0 {
		t.Fatal("segment lengths differ across identical seeds")
	}
	if a.Dataset.NumObservations() != b.Dataset.NumObservations() {
		t.Fatal("observation counts differ across identical seeds")
	}
}
