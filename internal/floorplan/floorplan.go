// Package floorplan simulates the paper's Section 5.2 crowd sensing
// application: indoor-floorplan construction, where smartphone users
// estimate hallway-segment lengths as step-size x step-count. The paper
// used a real Android deployment (247 users, 129 segments); this package
// substitutes a walker model whose per-user quality spread matches the
// paper's assumptions, so the utility/privacy curves keep their shape
// (see DESIGN.md, Substitutions).
//
// Walker model. Each hallway segment has a true length drawn uniformly
// from [MinLength, MaxLength]. Each user has a latent multiplicative
// step-size bias (their calibrated step length is off by a per-user
// factor) and per-walk counting noise. The reported distance for segment
// n by user s is
//
//	d_sn = L_n * (1 + b_s) * (1 + e_sn),
//
// with b_s ~ N(0, BiasStd^2) fixed per user and e_sn ~ N(0, CountNoise^2)
// fresh per walk. Users walk a random subset of segments.
package floorplan

import (
	"errors"
	"fmt"
	"math"

	"pptd/internal/randx"
	"pptd/internal/truth"
)

// ErrBadConfig reports an invalid generator configuration.
var ErrBadConfig = errors.New("floorplan: invalid config")

// Config parameterizes the simulated deployment.
type Config struct {
	// NumUsers is the number of smartphone users (paper: 247).
	NumUsers int
	// NumSegments is the number of hallway segments (paper: 129).
	NumSegments int
	// MinLength and MaxLength bound segment lengths in meters.
	MinLength, MaxLength float64
	// BiasStdLow and BiasStdHigh bound the per-user step-size bias
	// standard deviation: each user's bias std is drawn uniformly from
	// this range, giving the quality spread truth discovery exploits.
	BiasStdLow, BiasStdHigh float64
	// CountNoise is the per-walk counting noise standard deviation
	// (fraction of segment length).
	CountNoise float64
	// WalkProb is the probability a user walks a given segment.
	// Coverage of every segment is enforced regardless.
	WalkProb float64
}

// Default returns a configuration shaped like the paper's deployment:
// 247 users, 129 segments of 5-50 m, a wide per-user quality spread, and
// ~40% segment coverage per user.
func Default() Config {
	return Config{
		NumUsers:    247,
		NumSegments: 129,
		MinLength:   5,
		MaxLength:   50,
		BiasStdLow:  0.01,
		BiasStdHigh: 0.12,
		CountNoise:  0.02,
		WalkProb:    0.4,
	}
}

func (c Config) validate() error {
	switch {
	case c.NumUsers <= 0:
		return fmt.Errorf("%w: NumUsers = %d", ErrBadConfig, c.NumUsers)
	case c.NumSegments <= 0:
		return fmt.Errorf("%w: NumSegments = %d", ErrBadConfig, c.NumSegments)
	case c.MinLength <= 0 || c.MaxLength <= c.MinLength:
		return fmt.Errorf("%w: length range [%v, %v]", ErrBadConfig, c.MinLength, c.MaxLength)
	case c.BiasStdLow < 0 || c.BiasStdHigh < c.BiasStdLow:
		return fmt.Errorf("%w: bias std range [%v, %v]", ErrBadConfig, c.BiasStdLow, c.BiasStdHigh)
	case c.CountNoise < 0 || math.IsNaN(c.CountNoise):
		return fmt.Errorf("%w: CountNoise = %v", ErrBadConfig, c.CountNoise)
	case c.WalkProb <= 0 || c.WalkProb > 1 || math.IsNaN(c.WalkProb):
		return fmt.Errorf("%w: WalkProb = %v", ErrBadConfig, c.WalkProb)
	}
	return nil
}

// Instance is one simulated deployment.
type Instance struct {
	// Dataset holds the users' original distance reports.
	Dataset *truth.Dataset
	// SegmentLengths holds the true hallway lengths (the ground truth).
	SegmentLengths []float64
	// UserBiases holds each user's latent step-size bias b_s.
	UserBiases []float64
	// UserBiasStds holds the bias std each user was drawn with — the
	// latent quality knob (smaller is better).
	UserBiasStds []float64
}

// Generate draws one deployment from the config using rng.
func Generate(cfg Config, rng *randx.RNG) (*Instance, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadConfig)
	}

	lengths := make([]float64, cfg.NumSegments)
	span := cfg.MaxLength - cfg.MinLength
	for n := range lengths {
		lengths[n] = cfg.MinLength + span*rng.Float64()
	}

	biases := make([]float64, cfg.NumUsers)
	biasStds := make([]float64, cfg.NumUsers)
	for s := range biases {
		biasStds[s] = cfg.BiasStdLow + (cfg.BiasStdHigh-cfg.BiasStdLow)*rng.Float64()
		biases[s] = biasStds[s] * rng.Norm()
	}

	b := truth.NewBuilder(cfg.NumUsers, cfg.NumSegments)
	covered := make([]bool, cfg.NumSegments)
	walked := make([]bool, cfg.NumSegments)
	for s := 0; s < cfg.NumUsers; s++ {
		for n := range walked {
			walked[n] = false
		}
		for n, length := range lengths {
			if cfg.WalkProb < 1 && rng.Float64() >= cfg.WalkProb {
				continue
			}
			b.Add(s, n, report(length, biases[s], cfg.CountNoise, rng))
			walked[n] = true
			covered[n] = true
		}
		if s == cfg.NumUsers-1 {
			for n, ok := range covered {
				if !ok && !walked[n] {
					b.Add(s, n, report(lengths[n], biases[s], cfg.CountNoise, rng))
					covered[n] = true
				}
			}
		}
	}
	ds, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("floorplan: build dataset: %w", err)
	}
	return &Instance{
		Dataset:        ds,
		SegmentLengths: lengths,
		UserBiases:     biases,
		UserBiasStds:   biasStds,
	}, nil
}

// report computes one walked-distance estimate.
func report(length, bias, countNoise float64, rng *randx.RNG) float64 {
	walkErr := countNoise * rng.Norm()
	d := length * (1 + bias) * (1 + walkErr)
	if d < 0 {
		d = 0 // a walk cannot report negative distance
	}
	return d
}
