// Package synthetic generates the Section 5.1 evaluation data: S users
// whose error variances follow Exp(lambda1) observing N objects with known
// ground truths. The paper's setup is 150 users and 30 objects; the
// generator parameterizes all of it so the harness can sweep S and
// lambda1 (Figs. 3 and 4).
package synthetic

import (
	"errors"
	"fmt"
	"math"

	"pptd/internal/randx"
	"pptd/internal/truth"
)

// ErrBadConfig reports an invalid generator configuration.
var ErrBadConfig = errors.New("synthetic: invalid config")

// Config parameterizes the synthetic crowd.
type Config struct {
	// NumUsers is S, the number of users (paper default 150).
	NumUsers int
	// NumObjects is N, the number of objects (paper default 30).
	NumObjects int
	// Lambda1 is the rate of the exponential prior on user error
	// variances sigma_s^2 ~ Exp(Lambda1). Larger means better users.
	Lambda1 float64
	// TruthLow and TruthHigh bound the uniform ground-truth range.
	TruthLow, TruthHigh float64
	// ObserveProb is the probability a user observes each object
	// (1 = dense, the paper's setting). Coverage of every object by at
	// least one user is enforced regardless.
	ObserveProb float64
}

// Default returns the paper's Section 5.1 configuration: 150 users,
// 30 objects, lambda1 = 1, truths uniform in [0, 10), dense observations.
func Default() Config {
	return Config{
		NumUsers:    150,
		NumObjects:  30,
		Lambda1:     1,
		TruthLow:    0,
		TruthHigh:   10,
		ObserveProb: 1,
	}
}

func (c Config) validate() error {
	switch {
	case c.NumUsers <= 0:
		return fmt.Errorf("%w: NumUsers = %d", ErrBadConfig, c.NumUsers)
	case c.NumObjects <= 0:
		return fmt.Errorf("%w: NumObjects = %d", ErrBadConfig, c.NumObjects)
	case c.Lambda1 <= 0 || math.IsNaN(c.Lambda1) || math.IsInf(c.Lambda1, 0):
		return fmt.Errorf("%w: Lambda1 = %v", ErrBadConfig, c.Lambda1)
	case c.TruthHigh <= c.TruthLow || math.IsNaN(c.TruthLow) || math.IsNaN(c.TruthHigh):
		return fmt.Errorf("%w: truth range [%v, %v]", ErrBadConfig, c.TruthLow, c.TruthHigh)
	case c.ObserveProb <= 0 || c.ObserveProb > 1 || math.IsNaN(c.ObserveProb):
		return fmt.Errorf("%w: ObserveProb = %v", ErrBadConfig, c.ObserveProb)
	}
	return nil
}

// Instance is one generated crowd-sensing task: the original (unperturbed)
// dataset plus the latent quantities only a simulator can know.
type Instance struct {
	// Dataset holds the users' original claims.
	Dataset *truth.Dataset
	// GroundTruth holds the true value of each object.
	GroundTruth []float64
	// UserVariances holds each user's latent error variance sigma_s^2.
	UserVariances []float64
}

// Generate draws one instance from the config using rng.
func Generate(cfg Config, rng *randx.RNG) (*Instance, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadConfig)
	}

	truths := make([]float64, cfg.NumObjects)
	span := cfg.TruthHigh - cfg.TruthLow
	for n := range truths {
		truths[n] = cfg.TruthLow + span*rng.Float64()
	}

	variances := make([]float64, cfg.NumUsers)
	for s := range variances {
		variances[s] = rng.Exp() / cfg.Lambda1
	}

	b := truth.NewBuilder(cfg.NumUsers, cfg.NumObjects)
	covered := make([]bool, cfg.NumObjects)
	observed := make([]bool, cfg.NumObjects) // per-user scratch
	for s := 0; s < cfg.NumUsers; s++ {
		sigma := math.Sqrt(variances[s])
		for n := range observed {
			observed[n] = false
		}
		for n, tv := range truths {
			if cfg.ObserveProb < 1 && rng.Float64() >= cfg.ObserveProb {
				continue
			}
			b.Add(s, n, tv+sigma*rng.Norm())
			observed[n] = true
			covered[n] = true
		}
		// The last user picks up any objects nobody observed, keeping the
		// dataset valid under sparse configs.
		if s == cfg.NumUsers-1 {
			for n, ok := range covered {
				if !ok && !observed[n] {
					b.Add(s, n, truths[n]+sigma*rng.Norm())
					covered[n] = true
				}
			}
		}
	}
	ds, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("synthetic: build dataset: %w", err)
	}
	return &Instance{
		Dataset:       ds,
		GroundTruth:   truths,
		UserVariances: variances,
	}, nil
}
