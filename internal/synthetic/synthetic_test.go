package synthetic

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/truth"
)

func TestGenerateDefaultShape(t *testing.T) {
	inst, err := Generate(Default(), randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Dataset.NumUsers() != 150 || inst.Dataset.NumObjects() != 30 {
		t.Fatalf("dims = (%d, %d)", inst.Dataset.NumUsers(), inst.Dataset.NumObjects())
	}
	if inst.Dataset.NumObservations() != 150*30 {
		t.Fatalf("dense config produced %d observations", inst.Dataset.NumObservations())
	}
	if len(inst.GroundTruth) != 30 || len(inst.UserVariances) != 150 {
		t.Fatal("latent vectors have wrong lengths")
	}
	for _, tv := range inst.GroundTruth {
		if tv < 0 || tv >= 10 {
			t.Fatalf("truth %v outside [0, 10)", tv)
		}
	}
	for _, v := range inst.UserVariances {
		if v <= 0 {
			t.Fatalf("non-positive variance %v", v)
		}
	}
}

func TestGenerateVarianceDistribution(t *testing.T) {
	cfg := Default()
	cfg.NumUsers = 20000
	cfg.NumObjects = 1
	cfg.Lambda1 = 2
	inst, err := Generate(cfg, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(inst.UserVariances)
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean variance = %v, want ~1/lambda1 = 0.5", mean)
	}
}

func TestGenerateErrorsMatchVariances(t *testing.T) {
	// A user's claims should scatter around the truths with their
	// latent sigma_s.
	cfg := Default()
	cfg.NumUsers = 3
	cfg.NumObjects = 5000
	inst, err := Generate(cfg, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.NumUsers; s++ {
		obs, err := inst.Dataset.UserObservations(s)
		if err != nil {
			t.Fatal(err)
		}
		var w stats.Welford
		for _, o := range obs {
			w.Add(o.Value - inst.GroundTruth[o.Object])
		}
		got := w.Variance()
		want := inst.UserVariances[s]
		if math.Abs(got-want) > 0.1*want+0.01 {
			t.Errorf("user %d empirical error variance %v, latent %v", s, got, want)
		}
	}
}

func TestGenerateSparse(t *testing.T) {
	cfg := Default()
	cfg.ObserveProb = 0.3
	inst, err := Generate(cfg, randx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.NumUsers * cfg.NumObjects
	obs := inst.Dataset.NumObservations()
	if obs >= total/2 {
		t.Fatalf("sparse config produced %d/%d observations", obs, total)
	}
	// Every object covered by construction.
	for n := 0; n < cfg.NumObjects; n++ {
		claims, err := inst.Dataset.ObjectObservations(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(claims) == 0 {
			t.Fatalf("object %d uncovered", n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Default(), randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default(), randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for n := range a.GroundTruth {
		if a.GroundTruth[n] != b.GroundTruth[n] {
			t.Fatal("ground truths differ across identical seeds")
		}
	}
	da, db := a.Dataset.Dense(), b.Dataset.Dense()
	for s := range da {
		for n := range da[s] {
			if da[s][n] != db[s][n] {
				t.Fatal("observations differ across identical seeds")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	base := Default()
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero users", mutate: func(c *Config) { c.NumUsers = 0 }},
		{name: "zero objects", mutate: func(c *Config) { c.NumObjects = 0 }},
		{name: "bad lambda1", mutate: func(c *Config) { c.Lambda1 = 0 }},
		{name: "bad truth range", mutate: func(c *Config) { c.TruthHigh = c.TruthLow }},
		{name: "bad observe prob", mutate: func(c *Config) { c.ObserveProb = 0 }},
		{name: "observe prob above one", mutate: func(c *Config) { c.ObserveProb = 1.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Generate(cfg, randx.New(1)); !errors.Is(err, ErrBadConfig) {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := Generate(base, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("nil rng accepted")
	}
}

func TestGeneratedDataSupportsTruthDiscovery(t *testing.T) {
	inst, err := Generate(Default(), randx.New(8))
	if err != nil {
		t.Fatal(err)
	}
	crh, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	res, err := crh.Run(inst.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	mae, err := stats.MAE(res.Truths, inst.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.25 {
		t.Fatalf("CRH on clean synthetic data has MAE %v", mae)
	}
}
