package theory

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"pptd/internal/randx"
)

func TestNoiseLevelRoundTrip(t *testing.T) {
	lambda1 := 2.5
	c := 0.8
	lambda2, err := Lambda2ForNoiseLevel(c, lambda1)
	if err != nil {
		t.Fatal(err)
	}
	if got := NoiseLevel(lambda1, lambda2); math.Abs(got-c) > 1e-12 {
		t.Fatalf("round trip c = %v, want %v", got, c)
	}
}

func TestLambda2ForNoiseLevelValidation(t *testing.T) {
	for _, c := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Lambda2ForNoiseLevel(c, 1); !errors.Is(err, ErrBadParam) {
			t.Errorf("c = %v accepted", c)
		}
	}
	if _, err := Lambda2ForNoiseLevel(1, 0); !errors.Is(err, ErrBadParam) {
		t.Error("lambda1 = 0 accepted")
	}
}

func TestExpectedAbsNoiseClosedFormMatchesSimulation(t *testing.T) {
	rng := randx.New(40)
	for _, lambda2 := range []float64{0.5, 1, 2, 5} {
		const draws = 300000
		var sum float64
		for i := 0; i < draws; i++ {
			variance := rng.Exp() / lambda2
			sum += math.Abs(math.Sqrt(variance) * rng.Norm())
		}
		emp := sum / draws
		want := ExpectedAbsNoise(lambda2)
		if math.Abs(emp-want) > 0.01*want+0.002 {
			t.Errorf("lambda2 = %v: empirical E|xi| = %v, closed form %v", lambda2, emp, want)
		}
	}
}

func TestExpectedNoiseVariance(t *testing.T) {
	if got := ExpectedNoiseVariance(4); got != 0.25 {
		t.Fatalf("E[var] = %v, want 0.25", got)
	}
}

func TestGamma(t *testing.T) {
	got, err := Gamma(3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Sqrt(2*math.Log(20.0))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Gamma = %v, want %v", got, want)
	}
	for _, bad := range [][2]float64{{0, 0.5}, {-1, 0.5}, {1, 0}, {1, 1}, {1, 1.5}} {
		if _, err := Gamma(bad[0], bad[1]); !errors.Is(err, ErrBadParam) {
			t.Errorf("Gamma(%v, %v) accepted", bad[0], bad[1])
		}
	}
}

func TestSensitivityBound(t *testing.T) {
	got, err := SensitivityBound(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("SensitivityBound = %v, want 2", got)
	}
	if _, err := SensitivityBound(0, 1); !errors.Is(err, ErrBadParam) {
		t.Error("lambda1 = 0 accepted")
	}
	if _, err := SensitivityBound(1, 0); !errors.Is(err, ErrBadParam) {
		t.Error("gamma = 0 accepted")
	}
}

func TestSensitivityBoundHoldsEmpirically(t *testing.T) {
	// Lemma 4.7: Delta_s = |x1 - x2| <= gamma/lambda1 with probability at
	// least eta*(1 - 2e^{-b^2/2}/b), where x1, x2 are two claims by the
	// same user and sigma_s^2 ~ Exp(lambda1).
	rng := randx.New(41)
	const (
		b       = 3.0
		eta     = 0.95
		lambda1 = 2.0
		trials  = 200000
	)
	gamma, err := Gamma(b, eta)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := SensitivityBound(lambda1, gamma)
	if err != nil {
		t.Fatal(err)
	}
	held := 0
	for i := 0; i < trials; i++ {
		sigma := math.Sqrt(rng.Exp() / lambda1)
		x1 := sigma * rng.Norm()
		x2 := sigma * rng.Norm()
		if math.Abs(x1-x2) <= bound {
			held++
		}
	}
	frac := float64(held) / trials
	if want := SensitivityConfidence(b, eta); frac < want {
		t.Fatalf("bound held with probability %v < guaranteed %v", frac, want)
	}
}

func TestSensitivityConfidence(t *testing.T) {
	if got := SensitivityConfidence(0, 0.9); got != 0 {
		t.Errorf("confidence at b=0 should be 0, got %v", got)
	}
	// Tiny positive b has tail bound > 1, clamped to probability 0.
	if got := SensitivityConfidence(0.01, 0.9); got != 0 {
		t.Errorf("confidence at b=0.01 should clamp to 0, got %v", got)
	}
	got := SensitivityConfidence(3, 0.95)
	want := 0.95 * (1 - 2*math.Exp(-4.5)/3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("confidence = %v, want %v", got, want)
	}
}

func TestEpsilonGivenVariance(t *testing.T) {
	got, err := EpsilonGivenVariance(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("eps = %v, want 0.5", got)
	}
	if _, err := EpsilonGivenVariance(-1, 1); !errors.Is(err, ErrBadParam) {
		t.Error("negative sensitivity accepted")
	}
	if _, err := EpsilonGivenVariance(1, 0); !errors.Is(err, ErrBadParam) {
		t.Error("zero variance accepted")
	}
}

func TestEpsilonNoiseLevelRoundTrip(t *testing.T) {
	const (
		lambda1 = 1.5
		delta   = 0.3
		gamma   = 2.2
	)
	for _, eps := range []float64{0.1, 0.5, 1, 2, 3} {
		c, err := NoiseLevelForEpsilon(eps, delta, lambda1, gamma)
		if err != nil {
			t.Fatal(err)
		}
		back, err := EpsilonForNoiseLevel(c, delta, lambda1, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-eps) > 1e-9 {
			t.Errorf("eps %v -> c %v -> eps %v", eps, c, back)
		}
	}
}

func TestPrivacyMonotonicity(t *testing.T) {
	// Smaller epsilon (stronger privacy) must demand a larger noise level,
	// and smaller delta likewise.
	c1, err := NoiseLevelForEpsilon(0.5, 0.3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NoiseLevelForEpsilon(1.0, 0.3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 <= c2 {
		t.Errorf("c(eps=0.5) = %v not greater than c(eps=1) = %v", c1, c2)
	}
	c3, err := NoiseLevelForEpsilon(0.5, 0.1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c3 <= c1 {
		t.Errorf("c(delta=0.1) = %v not greater than c(delta=0.3) = %v", c3, c1)
	}
}

func TestPrivacyParamValidation(t *testing.T) {
	bad := []struct {
		name                       string
		eps, delta, lambda1, gamma float64
	}{
		{name: "zero eps", eps: 0, delta: 0.3, lambda1: 1, gamma: 1},
		{name: "bad delta low", eps: 1, delta: 0, lambda1: 1, gamma: 1},
		{name: "bad delta high", eps: 1, delta: 1, lambda1: 1, gamma: 1},
		{name: "bad lambda1", eps: 1, delta: 0.5, lambda1: 0, gamma: 1},
		{name: "bad gamma", eps: 1, delta: 0.5, lambda1: 1, gamma: 0},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NoiseLevelForEpsilon(tt.eps, tt.delta, tt.lambda1, tt.gamma); !errors.Is(err, ErrBadParam) {
				t.Error("invalid parameters accepted")
			}
		})
	}
	if _, err := EpsilonForNoiseLevel(0, 0.5, 1, 1); !errors.Is(err, ErrBadParam) {
		t.Error("c = 0 accepted")
	}
}

func TestUtilityNoiseUpperBound(t *testing.T) {
	// Spot-check against a hand-computed value.
	got, err := UtilityNoiseUpperBound(1, 1, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	inner := 0.1*100/(4*math.Sqrt2) + math.Sqrt(math.Pi)/8 + 1 + 2/math.Sqrt(math.Pi)
	want := math.Sqrt(math.Pi)*inner - 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
}

func TestUtilityBoundMonotoneInUsersAndAlpha(t *testing.T) {
	f := func(rawAlpha, rawBeta float64, rawS int) bool {
		alpha := 0.1 + math.Mod(math.Abs(rawAlpha), 5)
		beta := math.Mod(math.Abs(rawBeta), 1)
		s := 2 + rawS%1000
		if s < 2 {
			s = 2
		}
		small, err1 := UtilityNoiseUpperBound(1, alpha, beta, s)
		big, err2 := UtilityNoiseUpperBound(1, alpha, beta, 2*s)
		if err1 != nil || err2 != nil {
			return false
		}
		if big < small {
			return false // more users must tolerate no less noise
		}
		tighter, err := UtilityNoiseUpperBound(1, alpha/2, beta, s)
		if err != nil {
			return false
		}
		return tighter <= small // better utility (smaller alpha) tolerates less noise
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilityBoundScalesWithLambda1(t *testing.T) {
	lo, err := UtilityNoiseUpperBound(0.5, 1, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := UtilityNoiseUpperBound(5, 1, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("higher-quality data (larger lambda1) should tolerate more noise: %v <= %v", hi, lo)
	}
}

func TestUtilityBoundValidation(t *testing.T) {
	cases := []struct {
		name    string
		lambda1 float64
		alpha   float64
		beta    float64
		s       int
	}{
		{name: "bad lambda1", lambda1: 0, alpha: 1, beta: 0.1, s: 10},
		{name: "bad alpha", lambda1: 1, alpha: 0, beta: 0.1, s: 10},
		{name: "bad beta", lambda1: 1, alpha: 1, beta: 1.5, s: 10},
		{name: "bad users", lambda1: 1, alpha: 1, beta: 0.1, s: 0},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UtilityNoiseUpperBound(tt.lambda1, tt.alpha, tt.beta, tt.s); !errors.Is(err, ErrBadParam) {
				t.Error("invalid parameters accepted")
			}
		})
	}
}

func TestAlphaMin(t *testing.T) {
	// At small c the bound is positive and shrinks as lambda1 grows.
	a1, err := AlphaMin(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AlphaMin(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a1 <= 0 || a2 <= 0 || a2 >= a1 {
		t.Fatalf("AlphaMin(1, .1) = %v, AlphaMin(4, .1) = %v", a1, a2)
	}
	for _, c := range []float64{0, 1, 1.5, -0.2, math.NaN()} {
		if _, err := AlphaMin(1, c); !errors.Is(err, ErrBadParam) {
			t.Errorf("c = %v accepted", c)
		}
	}
	if _, err := AlphaMin(0, 0.5); !errors.Is(err, ErrBadParam) {
		t.Error("lambda1 = 0 accepted")
	}
}

func TestAlphaMinEqualOne(t *testing.T) {
	got, err := AlphaMinEqualOne(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 15 * math.Sqrt(4.0) / 8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("AlphaMinEqualOne(2) = %v, want %v", got, want)
	}
	if _, err := AlphaMinEqualOne(-1); !errors.Is(err, ErrBadParam) {
		t.Error("negative lambda1 accepted")
	}
}

func TestUtilityProbBoundEqualOneVanishesWithS(t *testing.T) {
	prev := math.Inf(1)
	for _, s := range []int{10, 100, 1000} {
		b, err := UtilityProbBoundEqualOne(1, 3, s)
		if err != nil {
			t.Fatal(err)
		}
		if b >= prev {
			t.Fatalf("bound did not shrink with S: %v then %v", prev, b)
		}
		prev = b
	}
	if prev > 1e-4 {
		t.Fatalf("bound at S=1000 = %v, want tiny", prev)
	}
	if b, err := UtilityProbBoundEqualOne(1, 1e-9, 1); err != nil || b != 1 {
		t.Fatalf("bound should clamp at 1, got %v, %v", b, err)
	}
	if _, err := UtilityProbBoundEqualOne(0, 1, 1); !errors.Is(err, ErrBadParam) {
		t.Error("lambda1 = 0 accepted")
	}
}

func TestAnalyzeTradeoff(t *testing.T) {
	gamma, err := Gamma(3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Plenty of users, generous alpha: feasible.
	tr, err := Analyze(1, 0.5, 0.1, 500, 1, 0.3, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Feasible {
		t.Fatalf("expected feasible trade-off, got %+v", tr)
	}
	if tr.CMin >= tr.CMax {
		t.Fatalf("feasible but CMin %v >= CMax %v", tr.CMin, tr.CMax)
	}
	// Absurd demands: tiny alpha/beta with tiny epsilon on few users.
	tr2, err := Analyze(1, 0.001, 0.001, 2, 0.0001, 0.01, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Feasible {
		t.Fatalf("expected infeasible trade-off, got %+v", tr2)
	}
}

func TestAnalyzePropagatesErrors(t *testing.T) {
	if _, err := Analyze(0, 1, 0.1, 10, 1, 0.3, 1); !errors.Is(err, ErrBadParam) {
		t.Error("bad lambda1 accepted")
	}
	if _, err := Analyze(1, 1, 0.1, 10, 0, 0.3, 1); !errors.Is(err, ErrBadParam) {
		t.Error("bad epsilon accepted")
	}
}

func TestMinEpsilonMeetsBothBounds(t *testing.T) {
	gamma, err := Gamma(0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	const (
		lambda1 = 1.0
		alpha   = 0.5
		beta    = 0.1
		users   = 200
		delta   = 0.3
	)
	eps, err := MinEpsilon(lambda1, alpha, beta, users, delta, gamma)
	if err != nil {
		t.Fatal(err)
	}
	// At eps* the trade-off is exactly feasible (floor == cap).
	tr, err := Analyze(lambda1, alpha, beta, users, eps, delta, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Feasible {
		t.Fatalf("eps* = %v should be feasible: %+v", eps, tr)
	}
	if math.Abs(tr.CMin-tr.CMax) > 1e-9*tr.CMax {
		t.Fatalf("at eps* floor %v != cap %v", tr.CMin, tr.CMax)
	}
	// Slightly stronger privacy must be infeasible.
	tr2, err := Analyze(lambda1, alpha, beta, users, eps*0.99, delta, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Feasible {
		t.Fatalf("eps below eps* should be infeasible: %+v", tr2)
	}
}

func TestMinEpsilonTighterUtilityDemandsWeakerPrivacy(t *testing.T) {
	gamma, err := Gamma(0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := MinEpsilon(1, 1.0, 0.1, 100, 0.3, gamma)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := MinEpsilon(1, 0.1, 0.1, 100, 0.3, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if tight <= loose {
		t.Fatalf("tighter utility should force larger eps*: %v <= %v", tight, loose)
	}
}

func TestMinEpsilonValidation(t *testing.T) {
	if _, err := MinEpsilon(0, 1, 0.1, 10, 0.3, 1); !errors.Is(err, ErrBadParam) {
		t.Error("bad lambda1 accepted")
	}
	if _, err := MinEpsilon(1, 1, 0.1, 10, 0, 1); !errors.Is(err, ErrBadParam) {
		t.Error("bad delta accepted")
	}
}
