// Package theory implements the closed-form utility and privacy analysis
// of the paper (Section 4): the (alpha, beta)-utility noise bound of
// Theorem 4.3, the (epsilon, delta)-local-differential-privacy bound of
// Theorem 4.8, their combination in Theorem 4.9, the c = 1 special case of
// Theorem A.1, and the sensitivity machinery of Definition 4.6 / Lemma 4.7.
//
// Throughout, lambda1 is the rate of the exponential prior on user error
// variances (sigma_s^2 ~ Exp(lambda1)), lambda2 the rate of the prior on
// noise variances (delta_s^2 ~ Exp(lambda2)), and
//
//	c = (1/lambda2) / (1/lambda1) = lambda1 / lambda2
//
// is the noise level: the ratio between expected noise variance and
// expected error variance.
package theory

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParam reports a parameter outside its valid domain.
var ErrBadParam = errors.New("theory: invalid parameter")

// NoiseLevel returns c = lambda1 / lambda2.
func NoiseLevel(lambda1, lambda2 float64) float64 { return lambda1 / lambda2 }

// Lambda2ForNoiseLevel returns the noise rate lambda2 that realizes noise
// level c given the error rate lambda1.
func Lambda2ForNoiseLevel(c, lambda1 float64) (float64, error) {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return 0, fmt.Errorf("%w: noise level c = %v", ErrBadParam, c)
	}
	if lambda1 <= 0 || math.IsNaN(lambda1) {
		return 0, fmt.Errorf("%w: lambda1 = %v", ErrBadParam, lambda1)
	}
	return lambda1 / c, nil
}

// ExpectedNoiseVariance returns E[delta_s^2] = 1/lambda2.
func ExpectedNoiseVariance(lambda2 float64) float64 { return 1 / lambda2 }

// ExpectedAbsNoise returns E|xi| for the mechanism's compound noise
// xi ~ N(0, Z), Z ~ Exp(lambda2):
//
//	E|xi| = E[ sqrt(2/pi) * sqrt(Z) ] = sqrt(2/pi) * sqrt(pi)/(2 sqrt(lambda2))
//	      = 1 / sqrt(2 * lambda2).
//
// This is the "Average of Added Noise" axis in the paper's figures.
func ExpectedAbsNoise(lambda2 float64) float64 {
	return 1 / math.Sqrt(2*lambda2)
}

// Gamma returns gamma = b * sqrt(2 * ln(1/(1-eta))), the constant of
// Lemma 4.7 tying the sensitivity bound to the error-variance tail: with
// probability at least eta*(1 - 2e^{-b^2/2}/b) a user's sensitivity
// satisfies Delta_s <= gamma / lambda1.
func Gamma(b, eta float64) (float64, error) {
	if b <= 0 || math.IsNaN(b) {
		return 0, fmt.Errorf("%w: b = %v", ErrBadParam, b)
	}
	if eta <= 0 || eta >= 1 || math.IsNaN(eta) {
		return 0, fmt.Errorf("%w: eta = %v outside (0,1)", ErrBadParam, eta)
	}
	return b * math.Sqrt(2*math.Log(1/(1-eta))), nil
}

// SensitivityBound returns the Lemma 4.7 bound Delta_s <= gamma/lambda1.
func SensitivityBound(lambda1, gamma float64) (float64, error) {
	if lambda1 <= 0 || math.IsNaN(lambda1) {
		return 0, fmt.Errorf("%w: lambda1 = %v", ErrBadParam, lambda1)
	}
	if gamma <= 0 || math.IsNaN(gamma) {
		return 0, fmt.Errorf("%w: gamma = %v", ErrBadParam, gamma)
	}
	return gamma / lambda1, nil
}

// SensitivityConfidence returns the probability eta*(1 - 2e^{-b^2/2}/b)
// with which the Lemma 4.7 sensitivity bound holds.
func SensitivityConfidence(b, eta float64) float64 {
	if b <= 0 {
		return 0
	}
	tail := 2 * math.Exp(-b*b/2) / b
	if tail > 1 {
		tail = 1
	}
	return eta * (1 - tail)
}

// EpsilonGivenVariance returns the pointwise epsilon achieved by Gaussian
// noise of the given variance against records at distance sensitivity:
// eps = Delta^2 / (2y), the inequality at the heart of Theorem 4.8's proof.
func EpsilonGivenVariance(sensitivity, variance float64) (float64, error) {
	if sensitivity < 0 || math.IsNaN(sensitivity) {
		return 0, fmt.Errorf("%w: sensitivity = %v", ErrBadParam, sensitivity)
	}
	if variance <= 0 || math.IsNaN(variance) {
		return 0, fmt.Errorf("%w: variance = %v", ErrBadParam, variance)
	}
	return sensitivity * sensitivity / (2 * variance), nil
}

// NoiseLevelForEpsilon returns the Theorem 4.8 lower bound on the noise
// level c required for (eps, delta)-local differential privacy:
//
//	c >= gamma^2 / (2 * eps * lambda1 * ln(1/(1-delta))).
//
// Note: the theorem statement in the paper omits the eps factor, but its
// own proof derives Pr{y >= Delta^2/(2 eps)} >= 1-delta, which yields the
// bound implemented here; with eps = 1 the two coincide.
func NoiseLevelForEpsilon(eps, delta, lambda1, gamma float64) (float64, error) {
	if err := checkPrivacyParams(eps, delta, lambda1, gamma); err != nil {
		return 0, err
	}
	return gamma * gamma / (2 * eps * lambda1 * math.Log(1/(1-delta))), nil
}

// EpsilonForNoiseLevel inverts NoiseLevelForEpsilon: the epsilon granted
// by noise level c at the given delta.
func EpsilonForNoiseLevel(c, delta, lambda1, gamma float64) (float64, error) {
	if c <= 0 || math.IsNaN(c) {
		return 0, fmt.Errorf("%w: noise level c = %v", ErrBadParam, c)
	}
	if err := checkPrivacyParams(1, delta, lambda1, gamma); err != nil {
		return 0, err
	}
	return gamma * gamma / (2 * c * lambda1 * math.Log(1/(1-delta))), nil
}

func checkPrivacyParams(eps, delta, lambda1, gamma float64) error {
	switch {
	case eps <= 0 || math.IsNaN(eps):
		return fmt.Errorf("%w: epsilon = %v", ErrBadParam, eps)
	case delta <= 0 || delta >= 1 || math.IsNaN(delta):
		return fmt.Errorf("%w: delta = %v outside (0,1)", ErrBadParam, delta)
	case lambda1 <= 0 || math.IsNaN(lambda1):
		return fmt.Errorf("%w: lambda1 = %v", ErrBadParam, lambda1)
	case gamma <= 0 || math.IsNaN(gamma):
		return fmt.Errorf("%w: gamma = %v", ErrBadParam, gamma)
	}
	return nil
}

// UtilityNoiseUpperBound returns C(lambda1, alpha, beta, S) of Theorem 4.3
// (Eq. 15): (alpha, beta)-utility holds for any noise level
//
//	c <= lambda1 * sqrt(pi) * (alpha^2 beta S^2 / (4 sqrt 2)
//	      + alpha^2 sqrt(pi)/8 + alpha + 2/sqrt(pi)) - 2.
func UtilityNoiseUpperBound(lambda1, alpha, beta float64, numUsers int) (float64, error) {
	switch {
	case lambda1 <= 0 || math.IsNaN(lambda1):
		return 0, fmt.Errorf("%w: lambda1 = %v", ErrBadParam, lambda1)
	case alpha <= 0 || math.IsNaN(alpha):
		return 0, fmt.Errorf("%w: alpha = %v", ErrBadParam, alpha)
	case beta < 0 || beta > 1 || math.IsNaN(beta):
		return 0, fmt.Errorf("%w: beta = %v outside [0,1]", ErrBadParam, beta)
	case numUsers <= 0:
		return 0, fmt.Errorf("%w: S = %d", ErrBadParam, numUsers)
	}
	s := float64(numUsers)
	inner := alpha*alpha*beta*s*s/(4*math.Sqrt2) +
		alpha*alpha*math.Sqrt(math.Pi)/8 +
		alpha +
		2/math.Sqrt(math.Pi)
	return lambda1*math.Sqrt(math.Pi)*inner - 2, nil
}

// AlphaMin returns the Theorem 4.3 lower bound on alpha for c in (0, 1):
//
//	alpha_min = 2 sqrt 2 / sqrt(lambda1 (1-c))
//	            * (3/4 - c (c + sqrt c + 1) / (sqrt 2 (1 + sqrt c))).
//
// The paper states the bound only for c != 1; for c >= 1 the prefactor is
// undefined and an error is returned (use AlphaMinEqualOne at c = 1).
func AlphaMin(lambda1, c float64) (float64, error) {
	if lambda1 <= 0 || math.IsNaN(lambda1) {
		return 0, fmt.Errorf("%w: lambda1 = %v", ErrBadParam, lambda1)
	}
	if c <= 0 || c >= 1 || math.IsNaN(c) {
		return 0, fmt.Errorf("%w: AlphaMin requires c in (0,1), got %v", ErrBadParam, c)
	}
	pre := 2 * math.Sqrt2 / math.Sqrt(lambda1*(1-c))
	term := 0.75 - c*(c+math.Sqrt(c)+1)/(math.Sqrt2*(1+math.Sqrt(c)))
	a := pre * term
	if a < 0 {
		// The paper's expression can dip below zero for c near 1; a
		// negative lower bound is vacuous, so clamp at 0.
		a = 0
	}
	return a, nil
}

// AlphaMinEqualOne returns the alpha threshold of Theorem A.1 (the c = 1
// special case) as stated in the paper: 15 sqrt(2 lambda1) / 8.
func AlphaMinEqualOne(lambda1 float64) (float64, error) {
	if lambda1 <= 0 || math.IsNaN(lambda1) {
		return 0, fmt.Errorf("%w: lambda1 = %v", ErrBadParam, lambda1)
	}
	return 15 * math.Sqrt(2*lambda1) / 8, nil
}

// UtilityProbBoundEqualOne returns the Theorem A.1 tail bound on
// Pr{ MAE >= alpha } at c = 1:
//
//	4 sqrt(2/pi) Var(Y) / (S^2 (alpha/2)^2),
//	Var(Y) = 3/lambda1 - (15 / (16 sqrt(lambda1 pi)))^2,
//
// with Y^2 ~ Gamma(3, 1/lambda1). The bound vanishes as S grows, which is
// the theorem's content.
func UtilityProbBoundEqualOne(lambda1, alpha float64, numUsers int) (float64, error) {
	switch {
	case lambda1 <= 0 || math.IsNaN(lambda1):
		return 0, fmt.Errorf("%w: lambda1 = %v", ErrBadParam, lambda1)
	case alpha <= 0 || math.IsNaN(alpha):
		return 0, fmt.Errorf("%w: alpha = %v", ErrBadParam, alpha)
	case numUsers <= 0:
		return 0, fmt.Errorf("%w: S = %d", ErrBadParam, numUsers)
	}
	ey := 15 / (16 * math.Sqrt(lambda1*math.Pi))
	varY := 3/lambda1 - ey*ey
	s := float64(numUsers)
	bound := 4 * math.Sqrt(2/math.Pi) * varY / (s * s * (alpha / 2) * (alpha / 2))
	if bound > 1 {
		bound = 1
	}
	return bound, nil
}

// Tradeoff captures the Theorem 4.9 feasibility analysis: the interval of
// noise levels that simultaneously meet the utility and privacy targets.
type Tradeoff struct {
	// CMin is the privacy lower bound on c (Theorem 4.8).
	CMin float64
	// CMax is the utility upper bound on c (Theorem 4.3).
	CMax float64
	// Feasible reports CMin <= CMax, i.e. some noise level satisfies both.
	Feasible bool
}

// Analyze evaluates Theorem 4.9 for the given targets. gamma comes from
// Gamma(b, eta).
func Analyze(lambda1, alpha, beta float64, numUsers int, eps, delta, gamma float64) (Tradeoff, error) {
	cMax, err := UtilityNoiseUpperBound(lambda1, alpha, beta, numUsers)
	if err != nil {
		return Tradeoff{}, err
	}
	cMin, err := NoiseLevelForEpsilon(eps, delta, lambda1, gamma)
	if err != nil {
		return Tradeoff{}, err
	}
	return Tradeoff{
		CMin:     cMin,
		CMax:     cMax,
		Feasible: cMin <= cMax && cMax > 0,
	}, nil
}

// MinEpsilon solves Eq. (19) for the strongest privacy compatible with an
// (alpha, beta)-utility target: the epsilon at which the Theorem 4.8
// privacy floor meets the Theorem 4.3 utility cap,
//
//	eps* = gamma^2 / (2 * C(lambda1, alpha, beta, S) * lambda1 * ln(1/(1-delta))).
//
// Any eps >= eps* is feasible (its required noise level fits under the
// utility cap); eps < eps* is not.
func MinEpsilon(lambda1, alpha, beta float64, numUsers int, delta, gamma float64) (float64, error) {
	cMax, err := UtilityNoiseUpperBound(lambda1, alpha, beta, numUsers)
	if err != nil {
		return 0, err
	}
	if cMax <= 0 {
		return 0, fmt.Errorf("%w: utility cap %v is non-positive; no noise level is tolerable", ErrBadParam, cMax)
	}
	eps, err := EpsilonForNoiseLevel(cMax, delta, lambda1, gamma)
	if err != nil {
		return 0, err
	}
	return eps, nil
}
