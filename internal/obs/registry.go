package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's Prometheus type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing count. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n < 0 is a programmer error and is ignored).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramMetric is a Histogram guarded by a mutex so concurrent
// observers are safe; the registry exposes its snapshot at scrape time.
type HistogramMetric struct {
	mu sync.Mutex
	h  Histogram
}

// Observe records one observation.
func (m *HistogramMetric) Observe(v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.h.Observe(v)
	m.mu.Unlock()
}

// Snapshot returns a deep copy of the current histogram.
func (m *HistogramMetric) Snapshot() Histogram {
	if m == nil {
		return Histogram{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.h.Clone()
}

// child is one labeled series inside a family: exactly one of the
// instrument fields is set.
type child struct {
	labelValues []string

	counter *Counter
	gauge   *Gauge
	hist    *HistogramMetric
	fn      func() float64   // callback counter or gauge, sampled at scrape
	histFn  func() Histogram // callback histogram, sampled at scrape
}

// family is one metric name: a help string, a kind, a fixed label
// schema, and the labeled children.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	bounds     []float64 // histogram kind only

	mu       sync.Mutex
	children map[string]*child
}

// Registry holds metric families and renders them in Prometheus text
// format. All methods are safe for concurrent use. Registration methods
// are idempotent for an identical (name, kind, label schema) and panic
// on a conflicting re-registration — metric names are a programmer
// contract, not runtime input.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// family returns (creating if needed) the named family, enforcing that
// the kind and label schema match any prior registration.
func (r *Registry) family(name, help string, kind Kind, labelNames []string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q for metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = make(map[string]*family)
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:       name,
			help:       help,
			kind:       kind,
			labelNames: append([]string(nil), labelNames...),
			bounds:     append([]float64(nil), bounds...),
			children:   make(map[string]*child),
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("obs: metric %q re-registered with conflicting kind or labels", name))
	}
	for i := range labelNames {
		if f.labelNames[i] != labelNames[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with conflicting label %q vs %q",
				name, f.labelNames[i], labelNames[i]))
		}
	}
	return f
}

const labelSep = "\x1f"

// child returns (creating if needed) the series for the given label
// values, running init on it while the family lock is held so
// concurrent first uses race safely.
func (f *family) child(labelValues []string, init func(*child)) *child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := ""
	if len(labelValues) > 0 {
		key = labelValues[0]
		for _, v := range labelValues[1:] {
			key += labelSep + v
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), labelValues...)}
		f.children[key] = c
	}
	if init != nil {
		init(c)
	}
	return c
}

// pairsToNamesValues splits alternating "name", "value" pairs.
func pairsToNamesValues(metric string, pairs []string) (names, values []string) {
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q label pairs must alternate name, value", metric))
	}
	for i := 0; i < len(pairs); i += 2 {
		names = append(names, pairs[i])
		values = append(values, pairs[i+1])
	}
	return names, values
}

// Counter returns the counter named name, creating it on first use.
// Optional labelPairs alternate label name, label value and pin this
// series' labels (use a CounterVec for per-request label values).
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	names, values := pairsToNamesValues(name, labelPairs)
	c := r.family(name, help, KindCounter, names, nil).child(values, func(c *child) {
		if c.counter == nil && c.fn == nil {
			c.counter = &Counter{}
		}
	})
	if c.counter == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a callback", name))
	}
	return c.counter
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	names, values := pairsToNamesValues(name, labelPairs)
	c := r.family(name, help, KindGauge, names, nil).child(values, func(c *child) {
		if c.gauge == nil && c.fn == nil {
			c.gauge = &Gauge{}
		}
	})
	if c.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a callback", name))
	}
	return c.gauge
}

// Histogram returns the histogram named name over the given bucket
// bounds, creating it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *HistogramMetric {
	names, values := pairsToNamesValues(name, labelPairs)
	c := r.family(name, help, KindHistogram, names, bounds).child(values, func(c *child) {
		if c.hist == nil && c.histFn == nil {
			c.hist = &HistogramMetric{h: NewHistogram(bounds)}
		}
	})
	if c.hist == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a callback", name))
	}
	return c.hist
}

// CounterFunc registers a callback counter: fn is sampled at scrape
// time and must return a monotonically non-decreasing value. Use it to
// expose a count the owner already maintains under its own lock, so the
// exposition and the owner's stats endpoint read one source of truth.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	names, values := pairsToNamesValues(name, labelPairs)
	r.family(name, help, KindCounter, names, nil).child(values, func(c *child) {
		if c.counter != nil || c.fn != nil {
			panic(fmt.Sprintf("obs: metric %q already registered", name))
		}
		c.fn = fn
	})
}

// GaugeFunc registers a callback gauge sampled at scrape time (queue
// depths, live byte sizes, tracked-entity counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	names, values := pairsToNamesValues(name, labelPairs)
	r.family(name, help, KindGauge, names, nil).child(values, func(c *child) {
		if c.gauge != nil || c.fn != nil {
			panic(fmt.Sprintf("obs: metric %q already registered", name))
		}
		c.fn = fn
	})
}

// HistogramFunc registers a callback histogram: fn is sampled at scrape
// time and must return a snapshot (deep copy) of a cumulative
// histogram.
func (r *Registry) HistogramFunc(name, help string, fn func() Histogram, labelPairs ...string) {
	names, values := pairsToNamesValues(name, labelPairs)
	r.family(name, help, KindHistogram, names, nil).child(values, func(c *child) {
		if c.hist != nil || c.histFn != nil {
			panic(fmt.Sprintf("obs: metric %q already registered", name))
		}
		c.histFn = fn
	})
}

// CounterVec is a counter family with runtime label values.
type CounterVec struct {
	f *family
}

// CounterVec returns the counter family named name with the given label
// schema; With yields the per-label-value counters.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, labelNames, nil)}
}

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	c := v.f.child(labelValues, func(c *child) {
		if c.counter == nil {
			c.counter = &Counter{}
		}
	})
	return c.counter
}

// HistogramVec is a histogram family with runtime label values.
type HistogramVec struct {
	f *family
}

// HistogramVec returns the histogram family named name over the given
// bucket bounds with the given label schema.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, KindHistogram, labelNames, bounds)}
}

// With returns the histogram for the given label values (created on
// first use).
func (v *HistogramVec) With(labelValues ...string) *HistogramMetric {
	if v == nil {
		return nil
	}
	c := v.f.child(labelValues, func(c *child) {
		if c.hist == nil {
			c.hist = &HistogramMetric{h: NewHistogram(v.f.bounds)}
		}
	})
	return c.hist
}

// snapshotFamilies copies the families and children, sorted by name and
// label values, sampling callbacks — the stable input to the text
// writer.
func (r *Registry) snapshotFamilies() []*familySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]*familySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := &familySnapshot{name: f.name, help: f.help, kind: f.kind, labelNames: f.labelNames}
		f.mu.Lock()
		children := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			children = append(children, c)
		}
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool {
			a, b := children[i].labelValues, children[j].labelValues
			for k := range a {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return false
		})
		for _, c := range children {
			s := sampleSnapshot{labelValues: c.labelValues}
			switch {
			case c.counter != nil:
				s.value = float64(c.counter.Value())
			case c.gauge != nil:
				s.value = float64(c.gauge.Value())
			case c.hist != nil:
				s.hist = c.hist.Snapshot()
				s.isHist = true
			case c.histFn != nil:
				s.hist = c.histFn()
				s.isHist = true
			case c.fn != nil:
				s.value = c.fn()
			}
			fs.samples = append(fs.samples, s)
		}
		out = append(out, fs)
	}
	return out
}

type familySnapshot struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	samples    []sampleSnapshot
}

type sampleSnapshot struct {
	labelValues []string
	value       float64
	hist        Histogram
	isHist      bool
}
