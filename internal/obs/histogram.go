// Package obs is the node's dependency-free observability kit: a
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text-format exposition, a text-format parser for tests and
// tooling, and an HTTP middleware that meters every route and stamps
// requests with an X-Request-ID for log correlation.
//
// The package deliberately has no third-party dependencies: instruments
// are small structs over sync/atomic and sync.Mutex, and the exposition
// writer emits the subset of the Prometheus text format that scrapers
// require (# HELP, # TYPE, sorted families, escaped labels, cumulative
// histogram buckets with +Inf).
//
// Histogram is also the wire type behind the store's JSON stats
// (streamstore.StoreStats embeds it), so /v1/stream/stats and /metrics
// render the same observations in two formats.
package obs

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bucket counting histogram, the wire-friendly
// shape shared by the store's JSON stats and the registry's Prometheus
// exposition. Bucket i counts observations v with v <= UpperBounds[i]
// (and above the previous bound); the final entry of Counts is the
// overflow bucket, so len(Counts) == len(UpperBounds)+1.
//
// A bare Histogram is not safe for concurrent use; wrap it in a
// HistogramMetric (or guard it with the owner's lock, as the stream
// store does) when observers race.
type Histogram struct {
	// UpperBounds are the inclusive bucket upper bounds, ascending.
	UpperBounds []float64 `json:"upperBounds"`
	// Counts holds one count per bucket plus the trailing overflow
	// bucket.
	Counts []int64 `json:"counts"`
	// Count and Sum aggregate every observation (Sum in the histogram's
	// unit), so mean = Sum/Count without walking buckets; Max is the
	// largest observation seen.
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
}

// NewHistogram returns an empty histogram over the given ascending
// bucket bounds (plus the implicit overflow bucket).
func NewHistogram(bounds []float64) Histogram {
	return Histogram{
		UpperBounds: bounds,
		Counts:      make([]int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.UpperBounds) && v > h.UpperBounds[i] {
		i++
	}
	h.Counts[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Clone returns a deep copy (the Counts slice is not shared).
func (h Histogram) Clone() Histogram {
	h.Counts = append([]int64(nil), h.Counts...)
	h.UpperBounds = append([]float64(nil), h.UpperBounds...)
	return h
}

// Sub returns the histogram of observations recorded between base and h,
// where base is an earlier snapshot of the same cumulative histogram:
// bucket counts, Count, and Sum subtract. Max cannot be windowed from
// two cumulative snapshots, so it carries h's all-time high-water mark.
// The result is a deep copy.
func (h Histogram) Sub(base Histogram) Histogram {
	out := h.Clone()
	if len(base.Counts) != len(out.Counts) {
		return out
	}
	for i := range out.Counts {
		out.Counts[i] -= base.Counts[i]
	}
	out.Count -= base.Count
	out.Sum -= base.Sum
	return out
}

// Mean returns the average observation (0 before any).
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observations: the smallest bucket bound at which the cumulative count
// reaches q, or Max for observations past the last bound. It is a
// bucket-resolution estimate, good enough for dashboards and tuning.
func (h Histogram) Quantile(q float64) float64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if float64(target) < q*float64(h.Count) || target == 0 {
		target++
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.UpperBounds) {
				return h.UpperBounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// String renders the non-empty buckets compactly, e.g.
// "<=1:3 <=4:10 >256:1 (count 14)".
func (h Histogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if i < len(h.UpperBounds) {
			fmt.Fprintf(&b, "<=%g:%d", h.UpperBounds[i], c)
		} else {
			fmt.Fprintf(&b, ">%g:%d", h.UpperBounds[len(h.UpperBounds)-1], c)
		}
	}
	if b.Len() == 0 {
		b.WriteString("empty")
	}
	fmt.Fprintf(&b, " (count %d)", h.Count)
	return b.String()
}
