package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantileAndString(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 9} {
		h.Observe(v)
	}
	if h.Count != 7 {
		t.Fatalf("Count = %d, want 7", h.Count)
	}
	if got := h.Max; got != 9 {
		t.Fatalf("Max = %v, want 9", got)
	}
	if got, want := h.Mean(), (0.5+1+1.5+2+3+5+9)/7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", got)
	}
	if got := h.Quantile(1); got != 9 {
		t.Fatalf("Quantile(1) = %v, want Max 9", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %v, want 0", got)
	}
	s := h.String()
	for _, want := range []string{"<=1:2", "<=2:2", "<=4:1", ">4:2", "(count 7)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if s := NewHistogram(nil).String(); !strings.Contains(s, "empty") {
		t.Fatalf("empty String() = %q", s)
	}
}

func TestHistogramSub(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	base := h.Clone()
	h.Observe(20)
	h.Observe(0.7)
	win := h.Sub(base)
	if win.Count != 2 {
		t.Fatalf("window Count = %d, want 2", win.Count)
	}
	if got, want := win.Sum, 20.7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("window Sum = %v, want %v", got, want)
	}
	if win.Counts[0] != 1 || win.Counts[1] != 0 || win.Counts[2] != 1 {
		t.Fatalf("window Counts = %v, want [1 0 1]", win.Counts)
	}
	// Max is a high-water mark, not windowed.
	if win.Max != 20 {
		t.Fatalf("window Max = %v, want 20", win.Max)
	}
	// Sub deep-copies: mutating the window must not touch the source.
	win.Counts[0] = 99
	if h.Counts[0] == 99 {
		t.Fatal("Sub shares Counts with its receiver")
	}
}

func TestRegistryExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.")
	c.Add(3)
	g := r.Gauge("test_queue_depth", "Items queued.", "shard", "0")
	g.Set(7)
	r.GaugeFunc("test_queue_depth", "Items queued.", func() float64 { return 2 }, "shard", "1")
	v := r.CounterVec("test_errors_total", "Errors by code.", "code")
	v.With(`bad"quote`).Inc()
	v.With("back\\slash\nnewline").Add(2)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 3\n",
		`test_queue_depth{shard="0"} 7` + "\n",
		`test_queue_depth{shard="1"} 2` + "\n",
		`test_errors_total{code="bad\"quote"} 1` + "\n",
		`test_errors_total{code="back\\slash\nnewline"} 2` + "\n",
		`test_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`test_latency_seconds_bucket{le="1"} 2` + "\n",
		`test_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"test_latency_seconds_sum 5.55\n",
		"test_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name: errors < latency < queue < requests.
	order := []string{"# TYPE test_errors_total", "# TYPE test_latency_seconds",
		"# TYPE test_queue_depth", "# TYPE test_requests_total"}
	last := -1
	for _, marker := range order {
		i := strings.Index(out, marker)
		if i < 0 || i < last {
			t.Fatalf("family order wrong (looking for %q after offset %d):\n%s", marker, last, out)
		}
		last = i
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "Total.").Add(41)
	r.CounterVec("rt_by_code", "By code.", "code").With("x\"y\\z").Add(5)
	r.Gauge("rt_gauge", "A gauge.").Set(-4)
	h := r.Histogram("rt_seconds", "Seconds.", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(100)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	p, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText of our own exposition: %v\n%s", err, b.String())
	}
	if got, err := p.Value("rt_total"); err != nil || got != 41 {
		t.Fatalf("rt_total = %v, %v; want 41", got, err)
	}
	if got, err := p.Value("rt_by_code", "code", "x\"y\\z"); err != nil || got != 5 {
		t.Fatalf("rt_by_code escape round-trip = %v, %v; want 5", got, err)
	}
	if got, err := p.Value("rt_gauge"); err != nil || got != -4 {
		t.Fatalf("rt_gauge = %v, %v; want -4", got, err)
	}
	if got, err := p.Value("rt_seconds_count"); err != nil || got != 3 {
		t.Fatalf("rt_seconds_count = %v, %v; want 3", got, err)
	}
	if got, err := p.Value("rt_seconds_bucket", "le", "+Inf"); err != nil || got != 3 {
		t.Fatalf("+Inf bucket = %v, %v; want 3", got, err)
	}
	if p.Types["rt_seconds"] != "histogram" {
		t.Fatalf("rt_seconds type = %q", p.Types["rt_seconds"])
	}
	if p.Help["rt_total"] != "Total." {
		t.Fatalf("rt_total help = %q", p.Help["rt_total"])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"sample before TYPE": "foo_total 1\n",
		"bad value":          "# TYPE foo_total counter\nfoo_total abc\n",
		"bad name":           "# TYPE 9foo counter\n9foo 1\n",
		"unterminated label": "# TYPE foo counter\nfoo{a=\"b 1\n",
		"bucket decreases": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf bucket vs count": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParseText accepted %q", name, in)
		}
	}
}

func TestRegistryConflictsPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c")
	mustPanic(t, "kind conflict", func() { r.Gauge("c_total", "g") })
	mustPanic(t, "label schema conflict", func() { r.Counter("c_total", "c", "a", "b") })
	mustPanic(t, "invalid name", func() { r.Counter("9bad", "x") })
	mustPanic(t, "reserved le label", func() { r.Counter("ok_total", "x", "le", "1") })
	r.CounterFunc("fn_total", "fn", func() float64 { return 1 })
	mustPanic(t, "func re-registration", func() {
		r.CounterFunc("fn_total", "fn", func() float64 { return 2 })
	})
	mustPanic(t, "direct over func", func() { r.Counter("fn_total", "fn") })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("cc_total", "c", "w")
	h := r.Histogram("cc_seconds", "h", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				vec.With("a").Inc()
				h.Observe(float64(j % 3))
				if j%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := vec.With("a").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestNilInstrumentsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *HistogramMetric
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(2)
	_ = c.Value()
	g.Set(1)
	g.Inc()
	g.Dec()
	_ = g.Value()
	h.Observe(1)
	_ = h.Snapshot()
	cv.With("x").Inc()
	hv.With("x").Observe(1)
}
