package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// HeaderRequestID is the request-correlation header: clients may send
// one; the middleware generates one when absent and always echoes it on
// the response, so a user report ("request a1b2c3d4 failed") joins
// against the node's structured logs.
const HeaderRequestID = "X-Request-ID"

// HeaderErrorCode is set by the error-envelope writer alongside the
// JSON body; the middleware reads it back to count envelope emissions
// per code without threading a registry through every handler.
const HeaderErrorCode = "X-Error-Code"

// maxRequestIDLen caps accepted client request IDs; longer (or
// non-printable) IDs are replaced, keeping log lines and label values
// bounded.
const maxRequestIDLen = 128

// Default latency buckets for HTTP request durations: 100µs to 10s.
var requestDurationBounds = []float64{
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

type requestIDKey struct{}

// RequestID returns the request's correlation ID installed by the
// middleware ("" outside one).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-char random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied request ID is
// acceptable for echoing and logging: non-empty printable ASCII without
// spaces, at most 128 bytes. Anything else should be replaced with
// NewRequestID rather than propagated.
func ValidRequestID(id string) bool {
	return validRequestID(id)
}

func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e { // printable ASCII, no spaces
			return false
		}
	}
	return true
}

// MiddlewareConfig parameterizes Middleware.
type MiddlewareConfig struct {
	// Registry receives the request metrics; nil disables metering.
	Registry *Registry
	// Logger receives one structured line per request; nil disables
	// logging.
	Logger *slog.Logger
	// Route maps a request to its bounded-cardinality route label (e.g.
	// the mux pattern). nil falls back to the URL path — only safe when
	// the path space is closed.
	Route func(*http.Request) string
}

// Middleware wraps an http.Handler with the node's request telemetry:
//
//   - pptd_http_requests_total{route,method,code} and
//     pptd_http_request_duration_seconds{route} per request, plus the
//     pptd_http_requests_in_flight gauge;
//   - pptd_errors_total{code} for responses carrying an X-Error-Code
//     header (set by the crowd error-envelope writer);
//   - an X-Request-ID accepted from the client (or generated), echoed
//     on every response — error envelopes included — and installed in
//     the request context for handlers;
//   - one slog line per request with method, route, path, status,
//     duration, bytes, and the request ID.
func Middleware(cfg MiddlewareConfig) func(http.Handler) http.Handler {
	var (
		requests *CounterVec
		duration *HistogramVec
		inflight *Gauge
		errs     *CounterVec
	)
	if cfg.Registry != nil {
		requests = cfg.Registry.CounterVec("pptd_http_requests_total",
			"HTTP requests served, by route pattern, method, and status code.",
			"route", "method", "code")
		duration = cfg.Registry.HistogramVec("pptd_http_request_duration_seconds",
			"HTTP request latency in seconds, by route pattern.",
			requestDurationBounds, "route")
		inflight = cfg.Registry.Gauge("pptd_http_requests_in_flight",
			"HTTP requests currently being served.")
		errs = cfg.Registry.CounterVec("pptd_errors_total",
			"Error envelopes emitted, by envelope code.", "code")
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(HeaderRequestID)
			if !validRequestID(id) {
				id = NewRequestID()
			}
			w.Header().Set(HeaderRequestID, id)
			r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))

			route := r.URL.Path
			if cfg.Route != nil {
				route = cfg.Route(r)
			}
			inflight.Inc()
			rec := &statusRecorder{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(rec, r)
			elapsed := time.Since(start)
			inflight.Dec()

			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			errCode := rec.Header().Get(HeaderErrorCode)
			if cfg.Registry != nil {
				requests.With(route, r.Method, strconv.Itoa(status)).Inc()
				duration.With(route).Observe(elapsed.Seconds())
				if errCode != "" {
					errs.With(errCode).Inc()
				}
			}
			if cfg.Logger != nil {
				attrs := []slog.Attr{
					slog.String("request_id", id),
					slog.String("method", r.Method),
					slog.String("route", route),
					slog.String("path", r.URL.Path),
					slog.Int("status", status),
					slog.Duration("duration", elapsed),
					slog.Int64("bytes", rec.bytes),
				}
				if errCode != "" {
					attrs = append(attrs, slog.String("error_code", errCode))
				}
				level := slog.LevelInfo
				if status >= 500 {
					level = slog.LevelError
				}
				cfg.Logger.LogAttrs(r.Context(), level, "http_request", attrs...)
			}
		})
	}
}

// statusRecorder captures the response status and body size without
// changing the handler-visible behavior.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer when it streams.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }
