package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareMetricsAndRequestID(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	var seenCtxID string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenCtxID = RequestID(r.Context())
		switch r.URL.Path {
		case "/boom":
			w.Header().Set(HeaderErrorCode, "internal")
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			w.Write([]byte("ok"))
		}
	})
	h := Middleware(MiddlewareConfig{
		Registry: reg,
		Logger:   logger,
		Route:    func(r *http.Request) string { return "/fixed" },
	})(inner)

	// Client-supplied ID is echoed and installed in the context.
	req := httptest.NewRequest("GET", "/ok", nil)
	req.Header.Set(HeaderRequestID, "client-id-1")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get(HeaderRequestID); got != "client-id-1" {
		t.Fatalf("echoed request ID = %q, want client-id-1", got)
	}
	if seenCtxID != "client-id-1" {
		t.Fatalf("context request ID = %q, want client-id-1", seenCtxID)
	}

	// Absent (or invalid) IDs are generated; errors are counted by code.
	req = httptest.NewRequest("GET", "/boom", nil)
	req.Header.Set(HeaderRequestID, "has spaces so invalid")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	gen := rr.Header().Get(HeaderRequestID)
	if gen == "" || gen == "has spaces so invalid" {
		t.Fatalf("generated request ID = %q", gen)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	p, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse middleware exposition: %v\n%s", err, b.String())
	}
	if v, err := p.Value("pptd_http_requests_total",
		"route", "/fixed", "method", "GET", "code", "200"); err != nil || v != 1 {
		t.Fatalf("requests 200 = %v, %v", v, err)
	}
	if v, err := p.Value("pptd_http_requests_total",
		"route", "/fixed", "method", "GET", "code", "500"); err != nil || v != 1 {
		t.Fatalf("requests 500 = %v, %v", v, err)
	}
	if v, err := p.Value("pptd_http_request_duration_seconds_count", "route", "/fixed"); err != nil || v != 2 {
		t.Fatalf("duration count = %v, %v", v, err)
	}
	if v, err := p.Value("pptd_errors_total", "code", "internal"); err != nil || v != 1 {
		t.Fatalf("errors internal = %v, %v", v, err)
	}
	if v, err := p.Value("pptd_http_requests_in_flight"); err != nil || v != 0 {
		t.Fatalf("in flight = %v, %v", v, err)
	}

	logs := logBuf.String()
	for _, want := range []string{`"request_id":"client-id-1"`, `"status":500`,
		`"error_code":"internal"`, `"route":"/fixed"`, `"msg":"http_request"`} {
		if !strings.Contains(logs, want) {
			t.Fatalf("log output missing %q:\n%s", want, logs)
		}
	}
}

func TestMiddlewareNilRegistryAndLogger(t *testing.T) {
	h := Middleware(MiddlewareConfig{})(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusNoContent {
		t.Fatalf("status = %d", rr.Code)
	}
	if rr.Header().Get(HeaderRequestID) == "" {
		t.Fatal("no request ID without a registry")
	}
}

func TestValidRequestID(t *testing.T) {
	if validRequestID("") || validRequestID(strings.Repeat("a", 200)) ||
		validRequestID("has space") || validRequestID("non\x01printable") {
		t.Fatal("invalid IDs accepted")
	}
	if !validRequestID("bench-42") || !validRequestID(NewRequestID()) {
		t.Fatal("valid IDs rejected")
	}
}
