package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name (for histograms,
// the expanded _bucket/_sum/_count name), its labels, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for the named label ("" if absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParsedMetrics is the result of ParseText: every sample plus the
// declared family types, for asserting exposition-format invariants in
// tests and smoke checks.
type ParsedMetrics struct {
	Samples []Sample
	// Types maps family name to the declared # TYPE keyword.
	Types map[string]string
	// Help maps family name to the declared # HELP text (unescaped).
	Help map[string]string
}

// Find returns the samples with the given name.
func (p *ParsedMetrics) Find(name string) []Sample {
	var out []Sample
	for _, s := range p.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the single sample value for name with exactly the given
// label pairs (alternating name, value), or an error when absent or
// ambiguous.
func (p *ParsedMetrics) Value(name string, labelPairs ...string) (float64, error) {
	if len(labelPairs)%2 != 0 {
		return 0, fmt.Errorf("obs: label pairs must alternate name, value")
	}
	want := make(map[string]string, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		want[labelPairs[i]] = labelPairs[i+1]
	}
	var found []Sample
	for _, s := range p.Find(name) {
		if len(s.Labels) != len(want) {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			found = append(found, s)
		}
	}
	switch len(found) {
	case 0:
		return 0, fmt.Errorf("obs: no sample %s%v", name, labelPairs)
	case 1:
		return found[0].Value, nil
	default:
		return 0, fmt.Errorf("obs: %d samples match %s%v", len(found), name, labelPairs)
	}
}

// ParseText parses the Prometheus text exposition format (the subset
// WriteText emits, which is also what real exporters produce): # HELP
// and # TYPE comments, and `name{labels} value` samples. It enforces
// the invariants a scraper relies on — valid metric and label names,
// # TYPE declared before a family's first sample, parseable values,
// and, for histograms, non-decreasing cumulative buckets whose +Inf
// bucket equals _count.
func ParseText(r io.Reader) (*ParsedMetrics, error) {
	p := &ParsedMetrics{Types: map[string]string{}, Help: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := p.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, ok := p.Types[familyOf(s.Name, p.Types)]; !ok {
			return nil, fmt.Errorf("line %d: sample %q before its # TYPE", lineNo, s.Name)
		}
		p.Samples = append(p.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := p.checkHistograms(); err != nil {
		return nil, err
	}
	return p, nil
}

// familyOf maps a sample name to its family: histogram samples carry
// _bucket/_sum/_count suffixes on the family name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func (p *ParsedMetrics) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		name, typ := fields[2], ""
		if len(fields) == 4 {
			typ = fields[3]
		}
		if !validName(name) {
			return fmt.Errorf("invalid metric name %q in # TYPE", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("invalid type %q for metric %q", typ, name)
		}
		if _, dup := p.Types[name]; dup {
			return fmt.Errorf("duplicate # TYPE for %q", name)
		}
		p.Types[name] = typ
	case "HELP":
		name := fields[2]
		if !validName(name) {
			return fmt.Errorf("invalid metric name %q in # HELP", name)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		p.Help[name] = unescapeHelp(help)
	}
	return nil
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: want value [timestamp], got %q", s.Name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at in[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == ',') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(in) && in[i] != '=' {
			i++
		}
		if i >= len(in) {
			return 0, fmt.Errorf("unterminated label name")
		}
		name := in[start:i]
		if name != "le" && !validName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %q: want quoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("label %q: unterminated value", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return 0, fmt.Errorf("label %q: dangling escape", name)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %q: bad escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
	}
}

// checkHistograms verifies, per histogram series, that cumulative
// bucket counts are sorted by bound and non-decreasing, and that the
// +Inf bucket equals the _count sample.
func (p *ParsedMetrics) checkHistograms() error {
	type series struct {
		buckets []Sample
		count   *float64
	}
	bySeries := map[string]*series{}
	key := func(fam string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString(fam)
		for _, k := range keys {
			b.WriteString(labelSep)
			b.WriteString(k)
			b.WriteString("=")
			b.WriteString(labels[k])
		}
		return b.String()
	}
	get := func(k string) *series {
		s, ok := bySeries[k]
		if !ok {
			s = &series{}
			bySeries[k] = s
		}
		return s
	}
	for _, s := range p.Samples {
		fam := familyOf(s.Name, p.Types)
		if p.Types[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			sr := get(key(fam, s.Labels))
			sr.buckets = append(sr.buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			get(key(fam, s.Labels)).count = &v
		}
	}
	for k, sr := range bySeries {
		sort.Slice(sr.buckets, func(i, j int) bool {
			return leBound(sr.buckets[i]) < leBound(sr.buckets[j])
		})
		prev := -1.0
		var inf *float64
		for _, b := range sr.buckets {
			if b.Value < prev {
				return fmt.Errorf("histogram %s: bucket counts decrease", k)
			}
			prev = b.Value
			if b.Label("le") == "+Inf" {
				v := b.Value
				inf = &v
			}
		}
		if inf == nil {
			return fmt.Errorf("histogram %s: no +Inf bucket", k)
		}
		if sr.count == nil {
			return fmt.Errorf("histogram %s: no _count sample", k)
		}
		if *inf != *sr.count {
			return fmt.Errorf("histogram %s: le=+Inf bucket %v != _count %v", k, *inf, *sr.count)
		}
	}
	return nil
}

func leBound(s Sample) float64 {
	le := s.Label("le")
	if le == "+Inf" {
		return float64(1 << 62)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return float64(1 << 62)
	}
	return v
}
