package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format, version 0.0.4.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family in Prometheus text format: families
// sorted by name, one # HELP and # TYPE line each, samples sorted by
// label values, histogram buckets cumulative with the +Inf bucket and
// _sum/_count series. Callback instruments are sampled once.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.samples {
			if s.isHist {
				writeHistSample(bw, f, s)
				continue
			}
			bw.WriteString(f.name)
			writeLabels(bw, f.labelNames, s.labelValues, "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func writeHistSample(bw *bufio.Writer, f *familySnapshot, s sampleSnapshot) {
	var cum int64
	for i, c := range s.hist.Counts {
		cum += c
		if i < len(s.hist.UpperBounds) {
			bw.WriteString(f.name)
			bw.WriteString("_bucket")
			writeLabels(bw, f.labelNames, s.labelValues, formatBound(s.hist.UpperBounds[i]))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(cum, 10))
			bw.WriteByte('\n')
		}
	}
	// The le="+Inf" bucket equals _count by construction.
	bw.WriteString(f.name)
	bw.WriteString("_bucket")
	writeLabels(bw, f.labelNames, s.labelValues, "+Inf")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(s.hist.Count, 10))
	bw.WriteByte('\n')

	bw.WriteString(f.name)
	bw.WriteString("_sum")
	writeLabels(bw, f.labelNames, s.labelValues, "")
	bw.WriteByte(' ')
	bw.WriteString(formatValue(s.hist.Sum))
	bw.WriteByte('\n')

	bw.WriteString(f.name)
	bw.WriteString("_count")
	writeLabels(bw, f.labelNames, s.labelValues, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(s.hist.Count, 10))
	bw.WriteByte('\n')
}

// writeLabels renders {k="v",...}; a non-empty le appends the
// histogram bucket bound as the final le="..." label.
func writeLabels(bw *bufio.Writer, names, values []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(n)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(values[i]))
		bw.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Handler returns an http.Handler serving the text exposition (the
// GET /metrics endpoint). Method checking is left to the caller's
// router conventions.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WriteText(w)
	})
}
