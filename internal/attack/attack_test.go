package attack

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/synthetic"
	"pptd/internal/truth"
)

func cleanInstance(t *testing.T, seed uint64) *synthetic.Instance {
	t.Helper()
	cfg := synthetic.Default()
	cfg.NumUsers = 60
	cfg.NumObjects = 40
	cfg.Lambda1 = 5 // high-quality honest crowd
	inst, err := synthetic.Generate(cfg, randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func adversaries() []Adversary {
	return []Adversary{
		Spammer{Fraction: 0.2},
		Biased{Fraction: 0.2, Offset: 5},
		Colluders{Fraction: 0.2, Shift: 4},
	}
}

func TestAdversaryNames(t *testing.T) {
	want := map[string]bool{"spammer": true, "biased": true, "colluders": true}
	for _, a := range adversaries() {
		if !want[a.Name()] {
			t.Errorf("unexpected adversary name %q", a.Name())
		}
	}
}

func TestCorruptPreservesShape(t *testing.T) {
	inst := cleanInstance(t, 1)
	for _, a := range adversaries() {
		corrupted, users, err := a.Corrupt(inst.Dataset, randx.New(2))
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if corrupted.NumUsers() != inst.Dataset.NumUsers() ||
			corrupted.NumObjects() != inst.Dataset.NumObjects() ||
			corrupted.NumObservations() != inst.Dataset.NumObservations() {
			t.Errorf("%s changed dataset shape", a.Name())
		}
		if len(users) != 12 { // ceil(0.2*60)
			t.Errorf("%s corrupted %d users, want 12", a.Name(), len(users))
		}
		seen := make(map[int]bool)
		for _, u := range users {
			if u < 0 || u >= 60 || seen[u] {
				t.Errorf("%s returned bad user list %v", a.Name(), users)
				break
			}
			seen[u] = true
		}
	}
}

func TestHonestUsersUntouched(t *testing.T) {
	inst := cleanInstance(t, 3)
	for _, a := range adversaries() {
		corrupted, users, err := a.Corrupt(inst.Dataset, randx.New(4))
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		bad := make(map[int]bool, len(users))
		for _, u := range users {
			bad[u] = true
		}
		orig := inst.Dataset.Dense()
		got := corrupted.Dense()
		for s := range orig {
			if bad[s] {
				continue
			}
			for n := range orig[s] {
				if orig[s][n] != got[s][n] && !(math.IsNaN(orig[s][n]) && math.IsNaN(got[s][n])) {
					t.Errorf("%s modified honest user %d", a.Name(), s)
					break
				}
			}
		}
	}
}

func TestTruthDiscoveryDownweightsAdversaries(t *testing.T) {
	inst := cleanInstance(t, 5)
	crh, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range adversaries() {
		corrupted, users, err := a.Corrupt(inst.Dataset, randx.New(6))
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		res, err := crh.Run(corrupted)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		bad := make(map[int]bool, len(users))
		for _, u := range users {
			bad[u] = true
		}
		var badW, goodW stats.Welford
		for s, w := range res.Weights {
			if bad[s] {
				badW.Add(w)
			} else {
				goodW.Add(w)
			}
		}
		if badW.Mean() >= goodW.Mean() {
			t.Errorf("%s: adversaries mean weight %v >= honest %v", a.Name(), badW.Mean(), goodW.Mean())
		}
	}
}

func TestWeightedBeatsMeanUnderAttack(t *testing.T) {
	inst := cleanInstance(t, 7)
	crh, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range adversaries() {
		corrupted, _, err := a.Corrupt(inst.Dataset, randx.New(8))
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		crhRes, err := crh.Run(corrupted)
		if err != nil {
			t.Fatal(err)
		}
		meanRes, err := (truth.Mean{}).Run(corrupted)
		if err != nil {
			t.Fatal(err)
		}
		crhMAE, err := stats.MAE(crhRes.Truths, inst.GroundTruth)
		if err != nil {
			t.Fatal(err)
		}
		meanMAE, err := stats.MAE(meanRes.Truths, inst.GroundTruth)
		if err != nil {
			t.Fatal(err)
		}
		if crhMAE >= meanMAE {
			t.Errorf("%s: CRH MAE %v not below mean MAE %v", a.Name(), crhMAE, meanMAE)
		}
	}
}

func TestValidation(t *testing.T) {
	inst := cleanInstance(t, 9)
	rng := randx.New(10)

	if _, _, err := (Spammer{Fraction: 0}).Corrupt(inst.Dataset, rng); !errors.Is(err, ErrBadParam) {
		t.Error("zero fraction accepted")
	}
	if _, _, err := (Spammer{Fraction: 1.5}).Corrupt(inst.Dataset, rng); !errors.Is(err, ErrBadParam) {
		t.Error("fraction > 1 accepted")
	}
	if _, _, err := (Biased{Fraction: 0.5, Offset: math.NaN()}).Corrupt(inst.Dataset, rng); !errors.Is(err, ErrBadParam) {
		t.Error("NaN offset accepted")
	}
	if _, _, err := (Colluders{Fraction: 0.5, Shift: math.Inf(1)}).Corrupt(inst.Dataset, rng); !errors.Is(err, ErrBadParam) {
		t.Error("Inf shift accepted")
	}
	if _, _, err := (Spammer{Fraction: 0.5}).Corrupt(nil, rng); !errors.Is(err, ErrBadParam) {
		t.Error("nil dataset accepted")
	}
	if _, _, err := (Spammer{Fraction: 0.5}).Corrupt(inst.Dataset, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil rng accepted")
	}
}

func TestFullFractionCorruptsEveryone(t *testing.T) {
	inst := cleanInstance(t, 11)
	_, users, err := (Biased{Fraction: 1, Offset: 1}).Corrupt(inst.Dataset, randx.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != inst.Dataset.NumUsers() {
		t.Fatalf("fraction 1 corrupted %d of %d users", len(users), inst.Dataset.NumUsers())
	}
}
