// Package attack provides failure-injection adversary models for stress
// testing truth discovery: users who spam random values, push a constant
// bias, or collude on a fabricated value. The paper motivates weighted
// aggregation by exactly these behaviours ("noisy or fake information due
// to ... the intent to deceive"); this package lets the test suite and
// benchmarks verify that the methods down-weight such users.
package attack

import (
	"errors"
	"fmt"
	"math"

	"pptd/internal/randx"
	"pptd/internal/truth"
)

// ErrBadParam reports an invalid adversary configuration.
var ErrBadParam = errors.New("attack: invalid parameter")

// Adversary rewrites the claims of a subset of users.
type Adversary interface {
	// Name identifies the adversary in reports.
	Name() string
	// Corrupt returns a copy of ds in which the adversarial users'
	// claims are replaced, along with the indices of those users.
	Corrupt(ds *truth.Dataset, rng *randx.RNG) (*truth.Dataset, []int, error)
}

// pickUsers selects ceil(fraction*S) distinct users uniformly at random.
func pickUsers(numUsers int, fraction float64, rng *randx.RNG) []int {
	k := int(math.Ceil(fraction * float64(numUsers)))
	if k > numUsers {
		k = numUsers
	}
	perm := rng.Perm(numUsers)
	chosen := perm[:k]
	out := make([]int, k)
	copy(out, chosen)
	return out
}

func validateFraction(fraction float64) error {
	if fraction <= 0 || fraction > 1 || math.IsNaN(fraction) {
		return fmt.Errorf("%w: fraction = %v", ErrBadParam, fraction)
	}
	return nil
}

// valueRange returns the [min, max] range of all claims in ds.
func valueRange(ds *truth.Dataset) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, o := range ds.Observations() {
		if o.Value < lo {
			lo = o.Value
		}
		if o.Value > hi {
			hi = o.Value
		}
	}
	if lo > hi { // no observations; degenerate but safe
		lo, hi = 0, 1
	}
	return lo, hi
}

// Spammer replaces each claim of the chosen users with a uniform random
// value drawn from the dataset's observed value range.
type Spammer struct {
	// Fraction of users to corrupt, in (0, 1].
	Fraction float64
}

var _ Adversary = Spammer{}

// Name implements Adversary.
func (Spammer) Name() string { return "spammer" }

// Corrupt implements Adversary.
func (a Spammer) Corrupt(ds *truth.Dataset, rng *randx.RNG) (*truth.Dataset, []int, error) {
	if err := checkArgs(ds, rng); err != nil {
		return nil, nil, err
	}
	if err := validateFraction(a.Fraction); err != nil {
		return nil, nil, err
	}
	users := pickUsers(ds.NumUsers(), a.Fraction, rng)
	bad := toSet(users)
	lo, hi := valueRange(ds)
	out, err := ds.Map(func(user, _ int, value float64) float64 {
		if _, ok := bad[user]; !ok {
			return value
		}
		return lo + (hi-lo)*rng.Float64()
	})
	if err != nil {
		return nil, nil, fmt.Errorf("attack: spammer: %w", err)
	}
	return out, users, nil
}

// Biased shifts every claim of the chosen users by a fixed offset —
// a sensor with a systematic calibration error, or a user gaming a
// reward metric in one direction.
type Biased struct {
	// Fraction of users to corrupt, in (0, 1].
	Fraction float64
	// Offset is added to every corrupted claim.
	Offset float64
}

var _ Adversary = Biased{}

// Name implements Adversary.
func (Biased) Name() string { return "biased" }

// Corrupt implements Adversary.
func (a Biased) Corrupt(ds *truth.Dataset, rng *randx.RNG) (*truth.Dataset, []int, error) {
	if err := checkArgs(ds, rng); err != nil {
		return nil, nil, err
	}
	if err := validateFraction(a.Fraction); err != nil {
		return nil, nil, err
	}
	if math.IsNaN(a.Offset) || math.IsInf(a.Offset, 0) {
		return nil, nil, fmt.Errorf("%w: offset = %v", ErrBadParam, a.Offset)
	}
	users := pickUsers(ds.NumUsers(), a.Fraction, rng)
	bad := toSet(users)
	out, err := ds.Map(func(user, _ int, value float64) float64 {
		if _, ok := bad[user]; !ok {
			return value
		}
		return value + a.Offset
	})
	if err != nil {
		return nil, nil, fmt.Errorf("attack: biased: %w", err)
	}
	return out, users, nil
}

// Colluders make the chosen users all report the same fabricated value
// per object (a coordinated poisoning attempt). The fabricated value is
// the object's claim mean shifted by Shift, so the colluders agree with
// each other but not with the honest crowd.
type Colluders struct {
	// Fraction of users to corrupt, in (0, 1].
	Fraction float64
	// Shift displaces the fabricated value from the per-object mean.
	Shift float64
}

var _ Adversary = Colluders{}

// Name implements Adversary.
func (Colluders) Name() string { return "colluders" }

// Corrupt implements Adversary.
func (a Colluders) Corrupt(ds *truth.Dataset, rng *randx.RNG) (*truth.Dataset, []int, error) {
	if err := checkArgs(ds, rng); err != nil {
		return nil, nil, err
	}
	if err := validateFraction(a.Fraction); err != nil {
		return nil, nil, err
	}
	if math.IsNaN(a.Shift) || math.IsInf(a.Shift, 0) {
		return nil, nil, fmt.Errorf("%w: shift = %v", ErrBadParam, a.Shift)
	}
	users := pickUsers(ds.NumUsers(), a.Fraction, rng)
	bad := toSet(users)
	means := ds.ObjectMeans()
	out, err := ds.Map(func(user, object int, value float64) float64 {
		if _, ok := bad[user]; !ok {
			return value
		}
		return means[object] + a.Shift
	})
	if err != nil {
		return nil, nil, fmt.Errorf("attack: colluders: %w", err)
	}
	return out, users, nil
}

func checkArgs(ds *truth.Dataset, rng *randx.RNG) error {
	if ds == nil {
		return fmt.Errorf("%w: nil dataset", ErrBadParam)
	}
	if rng == nil {
		return fmt.Errorf("%w: nil rng", ErrBadParam)
	}
	return nil
}

func toSet(xs []int) map[int]struct{} {
	out := make(map[int]struct{}, len(xs))
	for _, x := range xs {
		out[x] = struct{}{}
	}
	return out
}
