package secagg

import (
	"fmt"
	"math"

	"pptd/internal/randx"
	"pptd/internal/truth"
)

// SecureCRH runs CRH truth discovery where every aggregation step is a
// secure-sum round: the server never sees a user's readings or weights,
// only masked uploads whose sum yields the weighted numerators and
// denominators per object. Users receive the broadcast truths each round
// and update their own weights locally (as in lightweight crypto-based
// PPTD protocols). It returns the discovered truths and the exact
// communication/computation cost, which is the point of this baseline:
// the same aggregation quality as plain CRH at a protocol cost the
// ablation-cost experiment compares against the paper's mechanism.
//
// Per round, user s uploads a masked vector of width 2N+1:
//
//	[ w_s*x_s0, ..., w_s*x_s(N-1),  w_s*obs_s0, ..., w_s*obs_s(N-1),  d_s ]
//
// where obs_sn is the observation indicator and d_s the previous-round
// distance used for the Eq. 3 weight normalization.
func SecureCRH(ds *truth.Dataset, maxIterations int, tolerance float64, rng *randx.RNG) (*truth.Result, Cost, error) {
	if ds == nil {
		return nil, Cost{}, fmt.Errorf("%w: nil dataset", ErrBadParam)
	}
	if maxIterations <= 0 {
		return nil, Cost{}, fmt.Errorf("%w: max iterations %d", ErrBadParam, maxIterations)
	}
	if tolerance <= 0 || math.IsNaN(tolerance) {
		return nil, Cost{}, fmt.Errorf("%w: tolerance %v", ErrBadParam, tolerance)
	}
	numUsers := ds.NumUsers()
	numObjects := ds.NumObjects()
	if numUsers < 2 {
		return nil, Cost{}, fmt.Errorf("%w: %d users (need >= 2)", ErrBadParam, numUsers)
	}

	agg, err := NewAggregator(numUsers, rng)
	if err != nil {
		return nil, Cost{}, err
	}

	// Client-side state (one slot per user); the server sees none of it.
	type client struct {
		values  []float64 // readings by object (0 where unobserved)
		mask    []float64 // observation indicator
		weight  float64
		dist    float64
		numObs  int
		entries int
	}
	clients := make([]client, numUsers)
	for s := 0; s < numUsers; s++ {
		c := client{
			values: make([]float64, numObjects),
			mask:   make([]float64, numObjects),
			weight: 1,
			dist:   0,
		}
		obs, err := ds.UserObservations(s)
		if err != nil {
			return nil, Cost{}, fmt.Errorf("secagg: secure crh: %w", err)
		}
		for _, o := range obs {
			c.values[o.Object] = o.Value
			c.mask[o.Object] = 1
		}
		c.numObs = len(obs)
		clients[s] = c
	}

	const (
		distFloor = 1e-9
		wFloor    = 1e-9
	)
	truths := make([]float64, numObjects)
	prev := make([]float64, numObjects)
	res := &truth.Result{Truths: truths}
	width := 2*numObjects + 1
	upload := make([][]float64, numUsers)
	for s := range upload {
		upload[s] = make([]float64, width)
	}

	// The distance normalizer arrives with the *next* round's sums, so
	// estimated weights first influence the aggregation in round 3;
	// convergence is only meaningful once that has happened.
	weightsApplied := false
	for iter := 1; iter <= maxIterations; iter++ {
		res.Iterations = iter
		// Each client assembles its weighted upload.
		for s := range clients {
			c := &clients[s]
			w := c.weight
			if w < wFloor {
				w = wFloor
			}
			row := upload[s]
			for n := 0; n < numObjects; n++ {
				row[n] = w * c.values[n] * c.mask[n]
				row[numObjects+n] = w * c.mask[n]
			}
			row[2*numObjects] = c.dist
		}
		sums, err := agg.Sum(upload)
		if err != nil {
			return nil, Cost{}, err
		}
		copy(prev, truths)
		for n := 0; n < numObjects; n++ {
			den := sums[numObjects+n]
			if den < wFloor {
				den = wFloor
			}
			truths[n] = sums[n] / den
		}
		totalDist := sums[2*numObjects]

		if weightsApplied && maxAbsDiff(prev, truths) < tolerance {
			res.Converged = true
			break
		}

		// Broadcast truths; clients update distances and weights locally.
		weightsUpdated := false
		for s := range clients {
			c := &clients[s]
			if c.numObs == 0 {
				c.weight = 0
				continue
			}
			var d float64
			for n := 0; n < numObjects; n++ {
				if c.mask[n] == 0 {
					continue
				}
				diff := c.values[n] - truths[n]
				d += diff * diff
			}
			d /= float64(c.numObs)
			if d < distFloor {
				d = distFloor
			}
			c.dist = d
			if totalDist > 0 {
				w := -math.Log(c.dist / totalDist)
				if w < 0 {
					w = 0
				}
				c.weight = w
				weightsUpdated = true
			}
		}
		if weightsUpdated {
			// The next round's uploads carry estimated weights.
			weightsApplied = true
		}
	}

	weights := make([]float64, numUsers)
	for s := range clients {
		weights[s] = clients[s].weight
	}
	res.Weights = weights
	return res, agg.Cost(), nil
}

func maxAbsDiff(a, b []float64) float64 {
	var maxd float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > maxd {
			maxd = d
		}
	}
	return maxd
}
