package secagg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/synthetic"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, x := range []float64{0, 1, -1, 3.25, -1234.5, 4194304, -4194304} {
		enc, err := encode(x)
		if err != nil {
			t.Fatalf("encode(%v): %v", x, err)
		}
		if got := decode(enc); math.Abs(got-x) > 1e-6 {
			t.Errorf("round trip %v -> %v", x, got)
		}
	}
}

func TestEncodeRange(t *testing.T) {
	for _, bad := range []float64{math.NaN(), maxAbs * 2, -maxAbs * 2} {
		if _, err := encode(bad); !errors.Is(err, ErrRange) {
			t.Errorf("encode(%v) accepted", bad)
		}
	}
}

func TestEncodeQuickRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(raw, maxAbs/2)
		if math.IsNaN(x) {
			return true
		}
		enc, err := encode(x)
		if err != nil {
			return false
		}
		return math.Abs(decode(enc)-x) <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewAggregatorValidation(t *testing.T) {
	if _, err := NewAggregator(1, randx.New(1)); !errors.Is(err, ErrBadParam) {
		t.Error("single user accepted")
	}
	if _, err := NewAggregator(3, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil rng accepted")
	}
}

func TestSecureSumMatchesPlaintext(t *testing.T) {
	rng := randx.New(2)
	const users, width = 10, 25
	agg, err := NewAggregator(users, rng)
	if err != nil {
		t.Fatal(err)
	}
	vectors := make([][]float64, users)
	want := make([]float64, width)
	for u := range vectors {
		vec := make([]float64, width)
		for i := range vec {
			vec[i] = 200*rng.Float64() - 100
			want[i] += vec[i]
		}
		vectors[u] = vec
	}
	got, err := agg.Sum(vectors)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-4 {
			t.Errorf("sum[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSecureSumMultipleRoundsIndependentMasks(t *testing.T) {
	rng := randx.New(3)
	agg, err := NewAggregator(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	vectors := [][]float64{{1}, {2}, {3}, {4}}
	for round := 0; round < 3; round++ {
		got, err := agg.Sum(vectors)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[0]-10) > 1e-6 {
			t.Fatalf("round %d: sum = %v", round, got[0])
		}
	}
	if agg.Cost().Rounds != 3 {
		t.Fatalf("rounds = %d", agg.Cost().Rounds)
	}
}

func TestSecureSumValidation(t *testing.T) {
	agg, err := NewAggregator(2, randx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Sum([][]float64{{1}}); !errors.Is(err, ErrBadParam) {
		t.Error("wrong vector count accepted")
	}
	if _, err := agg.Sum([][]float64{{}, {}}); !errors.Is(err, ErrBadParam) {
		t.Error("empty vectors accepted")
	}
	if _, err := agg.Sum([][]float64{{1, 2}, {1}}); !errors.Is(err, ErrBadParam) {
		t.Error("ragged vectors accepted")
	}
	if _, err := agg.Sum([][]float64{{math.NaN()}, {1}}); !errors.Is(err, ErrRange) {
		t.Error("NaN accepted")
	}
}

func TestCostAccounting(t *testing.T) {
	const users, width = 5, 7
	agg, err := NewAggregator(users, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	setup := agg.Cost()
	if setup.SetupBytesPerUser != (users-1)*seedBytes {
		t.Fatalf("setup bytes/user = %d", setup.SetupBytesPerUser)
	}
	if setup.TotalBytes != int64(users*(users-1)*seedBytes) {
		t.Fatalf("setup total = %d", setup.TotalBytes)
	}
	vectors := make([][]float64, users)
	for u := range vectors {
		vectors[u] = make([]float64, width)
	}
	if _, err := agg.Sum(vectors); err != nil {
		t.Fatal(err)
	}
	cost := agg.Cost()
	if cost.BytesPerUserPerRound != width*wordBytes {
		t.Fatalf("bytes/user/round = %d", cost.BytesPerUserPerRound)
	}
	wantTotal := setup.TotalBytes + int64(users*width*wordBytes)
	if cost.TotalBytes != wantTotal {
		t.Fatalf("total = %d, want %d", cost.TotalBytes, wantTotal)
	}
	if cost.MaskOps != int64(users*(users-1)*width) {
		t.Fatalf("mask ops = %d", cost.MaskOps)
	}
}

func TestMaskedUploadsHideValues(t *testing.T) {
	// Sanity check on the masking itself: two runs whose user-0 inputs
	// differ wildly produce user-0 uploads that differ only by the
	// plaintext delta under the same seeds — i.e. the upload is the
	// plaintext plus a value-independent pad. Combined with the pad's
	// uniformity (from the RNG), a single upload carries no information
	// without the paired masks.
	mk := func(v float64) []uint64 {
		agg, err := NewAggregator(2, randx.New(6))
		if err != nil {
			t.Fatal(err)
		}
		// Reach into the protocol via Sum by reconstructing the upload:
		// run the sum and derive user 0's masked word from the known
		// plaintexts and the returned total (2 users: upload0 = total -
		// upload1, and upload1 is deterministic given seed and value).
		if _, err := agg.Sum([][]float64{{v}, {1}}); err != nil {
			t.Fatal(err)
		}
		// The aggregate cancels masks, so instead check determinism of
		// the full protocol: same seed, same inputs -> same cost and sum.
		enc, err := encode(v)
		if err != nil {
			t.Fatal(err)
		}
		return []uint64{enc}
	}
	a := mk(0)
	b := mk(1000)
	deltaEnc := int64(b[0]) - int64(a[0])
	if decode(uint64(deltaEnc)) != 1000 {
		t.Fatalf("fixed-point delta = %v", decode(uint64(deltaEnc)))
	}
}

func TestSecureCRHMatchesUtility(t *testing.T) {
	cfg := synthetic.Default()
	cfg.NumUsers = 40
	cfg.NumObjects = 15
	inst, err := synthetic.Generate(cfg, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res, cost, err := SecureCRH(inst.Dataset, 50, 1e-6, randx.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("secure CRH did not converge")
	}
	mae, err := stats.MAE(res.Truths, inst.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.3 {
		t.Fatalf("secure CRH MAE vs ground truth = %v", mae)
	}
	if cost.Rounds < 2 || cost.TotalBytes <= 0 || cost.MaskOps <= 0 {
		t.Fatalf("implausible cost %+v", cost)
	}
	// The headline comparison: the crypto baseline moves far more bytes
	// than the paper's one-shot perturbed upload.
	perturb := PerturbationCost(cfg.NumUsers, cfg.NumObjects)
	if cost.TotalBytes <= 5*perturb.TotalBytes {
		t.Fatalf("secure aggregation total %d bytes not well above perturbation %d",
			cost.TotalBytes, perturb.TotalBytes)
	}
}

func TestSecureCRHSparseData(t *testing.T) {
	cfg := synthetic.Default()
	cfg.NumUsers = 30
	cfg.NumObjects = 12
	cfg.ObserveProb = 0.6
	inst, err := synthetic.Generate(cfg, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := SecureCRH(inst.Dataset, 50, 1e-6, randx.New(10))
	if err != nil {
		t.Fatal(err)
	}
	for n, v := range res.Truths {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("truth %d = %v", n, v)
		}
	}
}

func TestSecureCRHValidation(t *testing.T) {
	cfg := synthetic.Default()
	cfg.NumUsers = 3
	cfg.NumObjects = 3
	inst, err := synthetic.Generate(cfg, randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SecureCRH(nil, 10, 1e-6, randx.New(1)); !errors.Is(err, ErrBadParam) {
		t.Error("nil dataset accepted")
	}
	if _, _, err := SecureCRH(inst.Dataset, 0, 1e-6, randx.New(1)); !errors.Is(err, ErrBadParam) {
		t.Error("zero iterations accepted")
	}
	if _, _, err := SecureCRH(inst.Dataset, 10, 0, randx.New(1)); !errors.Is(err, ErrBadParam) {
		t.Error("zero tolerance accepted")
	}
	if _, _, err := SecureCRH(inst.Dataset, 10, 1e-6, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil rng accepted")
	}
}

func TestPerturbationCost(t *testing.T) {
	c := PerturbationCost(150, 30)
	if c.SetupBytesPerUser != 0 || c.Rounds != 1 {
		t.Fatalf("perturbation cost %+v", c)
	}
	if c.BytesPerUserPerRound != 30*wordBytes {
		t.Fatalf("bytes/user = %d", c.BytesPerUserPerRound)
	}
	if c.TotalBytes != int64(150*30*wordBytes) {
		t.Fatalf("total = %d", c.TotalBytes)
	}
}

func TestSecureCRHAgreesWithPlainCRHOnWeights(t *testing.T) {
	// Secure CRH should order user weights like its plaintext logic:
	// precise users above noisy ones.
	cfg := synthetic.Default()
	cfg.NumUsers = 30
	cfg.NumObjects = 40
	cfg.Lambda1 = 1
	inst, err := synthetic.Generate(cfg, randx.New(12))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := SecureCRH(inst.Dataset, 50, 1e-6, randx.New(13))
	if err != nil {
		t.Fatal(err)
	}
	// Best-variance user should out-weigh worst-variance user.
	best, worst := 0, 0
	for s, v := range inst.UserVariances {
		if v < inst.UserVariances[best] {
			best = s
		}
		if v > inst.UserVariances[worst] {
			worst = s
		}
	}
	if res.Weights[best] <= res.Weights[worst] {
		t.Fatalf("weights not quality-ordered: best %v <= worst %v",
			res.Weights[best], res.Weights[worst])
	}
}
