// Package secagg implements a pairwise-masking secure aggregation
// protocol (Bonawitz-style additive masking without dropout recovery,
// over a simulated network) — the class of crypto-based alternative the
// paper argues against deploying at crowd sensing scale (Section 1:
// "encryption or secure multi-party computation ... time-consuming
// computation or expensive communication").
//
// It exists as a measurable baseline: the same truth-discovery
// aggregation is run with the server learning only masked sums, and the
// protocol's communication and computation costs are accounted exactly,
// so the evaluation harness can put hard numbers on the paper's
// efficiency claim (see the ablation-cost experiment).
//
// Protocol sketch. Values are fixed-point encoded into uint64. Every
// user pair (u, v), u < v, derives a shared stream of masks from a
// pairwise seed; user u adds the stream to their encoded vector and
// user v subtracts it. Individual uploads are uniformly masked, and the
// modular sum over all users cancels every mask, leaving the exact sum.
// A weighted aggregation round uploads, per user, the weighted values
// w_s*x_sn for every object plus the weight itself.
package secagg

import (
	"errors"
	"fmt"
	"math"

	"pptd/internal/randx"
)

// ErrBadParam reports an invalid protocol parameter.
var ErrBadParam = errors.New("secagg: invalid parameter")

// ErrRange reports a value outside the fixed-point encoding range.
var ErrRange = errors.New("secagg: value out of fixed-point range")

const (
	// fracBits is the fixed-point fractional precision.
	fracBits = 20
	// maxAbs bounds |value| so S-user sums cannot wrap the top bit;
	// 2^42 / 2^20 = 2^22 integer range per value leaves 21 bits of
	// headroom for million-user sums.
	maxAbs = float64(1 << 22)
	// seedBytes models the per-pair key-agreement payload (an X25519
	// public key plus an authenticated encryption overhead).
	seedBytes = 64
	// wordBytes is the wire size of one masked value.
	wordBytes = 8
)

// encode converts a float to two's-complement fixed point.
func encode(x float64) (uint64, error) {
	if math.IsNaN(x) || math.Abs(x) > maxAbs {
		return 0, fmt.Errorf("%w: %v (|x| must be <= %v)", ErrRange, x, maxAbs)
	}
	return uint64(int64(math.Round(x * (1 << fracBits)))), nil
}

// decode inverts encode on (possibly wrapped) sums.
func decode(u uint64) float64 {
	return float64(int64(u)) / (1 << fracBits)
}

// Cost records the exact communication footprint of a protocol run.
type Cost struct {
	// SetupBytesPerUser is the one-time pairwise key-agreement upload:
	// (S-1) encrypted seeds.
	SetupBytesPerUser int
	// BytesPerUserPerRound is each user's per-round upload.
	BytesPerUserPerRound int
	// Rounds is the number of aggregation rounds executed.
	Rounds int
	// TotalBytes sums everything sent by all users, setup included.
	TotalBytes int64
	// MaskOps counts mask generations (the dominating client cost).
	MaskOps int64
}

// Aggregator runs secure-sum rounds for a fixed cohort of users. It
// simulates the pairwise seeds a real deployment would establish with a
// key agreement; the server-side view in this simulation is only the
// masked uploads and their sum.
type Aggregator struct {
	numUsers int
	seeds    [][]uint64 // seeds[u][v] for u < v
	cost     Cost
}

// NewAggregator sets up the cohort: pairwise seed establishment for
// numUsers users, accounted into the setup cost.
func NewAggregator(numUsers int, rng *randx.RNG) (*Aggregator, error) {
	if numUsers < 2 {
		return nil, fmt.Errorf("%w: %d users (need >= 2)", ErrBadParam, numUsers)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadParam)
	}
	seeds := make([][]uint64, numUsers)
	for u := range seeds {
		seeds[u] = make([]uint64, numUsers)
		for v := u + 1; v < numUsers; v++ {
			seeds[u][v] = rng.Uint64()
		}
	}
	return &Aggregator{
		numUsers: numUsers,
		seeds:    seeds,
		cost: Cost{
			SetupBytesPerUser: (numUsers - 1) * seedBytes,
			TotalBytes:        int64(numUsers) * int64(numUsers-1) * seedBytes,
		},
	}, nil
}

// NumUsers returns the cohort size.
func (a *Aggregator) NumUsers() int { return a.numUsers }

// Cost returns the accumulated cost so far.
func (a *Aggregator) Cost() Cost { return a.cost }

// Sum runs one secure-sum round: vectors[u] is user u's plaintext input
// (all equal length). It returns the element-wise sum as the server
// would decode it. Individual uploads are masked; only their modular sum
// is meaningful.
func (a *Aggregator) Sum(vectors [][]float64) ([]float64, error) {
	if len(vectors) != a.numUsers {
		return nil, fmt.Errorf("%w: %d vectors for %d users", ErrBadParam, len(vectors), a.numUsers)
	}
	width := len(vectors[0])
	if width == 0 {
		return nil, fmt.Errorf("%w: empty vectors", ErrBadParam)
	}
	for u, vec := range vectors {
		if len(vec) != width {
			return nil, fmt.Errorf("%w: vector %d has %d entries, want %d", ErrBadParam, u, len(vec), width)
		}
	}

	// Each user builds their masked upload independently (client side).
	uploads := make([][]uint64, a.numUsers)
	for u := 0; u < a.numUsers; u++ {
		masked := make([]uint64, width)
		for i, x := range vectors[u] {
			enc, err := encode(x)
			if err != nil {
				return nil, fmt.Errorf("secagg: user %d entry %d: %w", u, i, err)
			}
			masked[i] = enc
		}
		for v := 0; v < a.numUsers; v++ {
			if v == u {
				continue
			}
			lo, hi := u, v
			if lo > hi {
				lo, hi = hi, lo
			}
			stream := randx.New(a.seeds[lo][hi] ^ uint64(a.cost.Rounds)*0x9e3779b97f4a7c15)
			for i := range masked {
				mask := stream.Uint64()
				if u == lo {
					masked[i] += mask
				} else {
					masked[i] -= mask
				}
				a.cost.MaskOps++
			}
		}
		uploads[u] = masked
	}

	// Server side: modular sum cancels every mask.
	sums := make([]uint64, width)
	for _, up := range uploads {
		for i, w := range up {
			sums[i] += w
		}
	}
	out := make([]float64, width)
	for i, s := range sums {
		out[i] = decode(s)
	}

	a.cost.Rounds++
	a.cost.BytesPerUserPerRound = width * wordBytes
	a.cost.TotalBytes += int64(a.numUsers) * int64(width) * wordBytes
	return out, nil
}

// PerturbationCost returns the communication footprint of the paper's
// mechanism for the same task, for comparison: each user uploads their
// N perturbed readings exactly once and there is no setup.
func PerturbationCost(numUsers, numObjects int) Cost {
	return Cost{
		BytesPerUserPerRound: numObjects * wordBytes,
		Rounds:               1,
		TotalBytes:           int64(numUsers) * int64(numObjects) * wordBytes,
	}
}
