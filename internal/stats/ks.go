package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrBadCDF reports a nil reference CDF.
var ErrBadCDF = errors.New("stats: nil reference CDF")

// KolmogorovSmirnov returns the one-sample Kolmogorov-Smirnov statistic
// D_n = sup_x |F_n(x) - F(x)| between the empirical distribution of xs
// and the reference CDF. Used by the test suite to validate the randx
// samplers against their analytic distributions.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if cdf == nil {
		return 0, ErrBadCDF
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
	}
	return d, nil
}

// KSCriticalValue returns the asymptotic critical value of the one-sample
// KS statistic at the given significance level alpha (two-sided):
// c(alpha)/sqrt(n) with c(alpha) = sqrt(-ln(alpha/2)/2). Valid for large
// n; the test suite uses n in the tens of thousands.
func KSCriticalValue(n int, alpha float64) float64 {
	if n <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c / math.Sqrt(float64(n))
}
