package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 0, 4.25, 3, 3, -7}
	var w Welford
	w.AddAll(xs)
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Mean = %v, want %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-12) {
		t.Errorf("Variance = %v, want %v", w.Variance(), Variance(xs))
	}
	if !almostEqual(w.SampleVariance(), SampleVariance(xs), 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", w.SampleVariance(), SampleVariance(xs))
	}
	if !almostEqual(w.StdDev(), StdDev(xs), 1e-12) {
		t.Errorf("StdDev = %v, want %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) {
		t.Error("empty Welford should report NaN moments")
	}
	w.Add(1)
	if !math.IsNaN(w.SampleVariance()) {
		t.Error("single-value sample variance should be NaN")
	}
}

func TestWelfordMergeMatchesCombined(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var wa, wb, wAll Welford
		wa.AddAll(a)
		wb.AddAll(b)
		wAll.AddAll(a)
		wAll.AddAll(b)
		wa.Merge(wb)
		if wa.N() != wAll.N() {
			return false
		}
		if wa.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(wAll.Mean())
		return almostEqual(wa.Mean(), wAll.Mean(), 1e-8*scale) &&
			almostEqual(wa.Variance(), wAll.Variance(), 1e-6*(1+wAll.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.AddAll([]float64{1, 2, 3})
	a.Merge(b)
	if a.N() != 3 || !almostEqual(a.Mean(), 2, 1e-12) {
		t.Errorf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	// Merging an empty accumulator is a no-op.
	var empty Welford
	a.Merge(empty)
	if a.N() != 3 {
		t.Errorf("merge of empty changed n to %d", a.N())
	}
}
