package stats

import (
	"errors"
	"math"
	"testing"
)

func TestKolmogorovSmirnovExactUniform(t *testing.T) {
	// Empirical CDF of {0.25, 0.75} against U(0,1):
	// at 0.25: F=0.25, F_n jumps 0->0.5 => D >= 0.25;
	// at 0.75: F=0.75, F_n jumps 0.5->1 => D >= 0.25. D = 0.25.
	d, err := KolmogorovSmirnov([]float64{0.75, 0.25}, func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		default:
			return x
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("D = %v, want 0.25", d)
	}
}

func TestKolmogorovSmirnovErrors(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, func(float64) float64 { return 0 }); !errors.Is(err, ErrEmpty) {
		t.Error("empty sample accepted")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); !errors.Is(err, ErrBadCDF) {
		t.Error("nil CDF accepted")
	}
}

func TestKSCriticalValue(t *testing.T) {
	// c(0.05) = 1.3581; at n = 10000 the critical value is ~0.01358.
	got := KSCriticalValue(10000, 0.05)
	if math.Abs(got-0.013581) > 1e-4 {
		t.Fatalf("critical value = %v, want ~0.01358", got)
	}
	if !math.IsNaN(KSCriticalValue(0, 0.05)) || !math.IsNaN(KSCriticalValue(10, 1.5)) {
		t.Error("invalid inputs should be NaN")
	}
	// Larger n shrinks the critical value.
	if KSCriticalValue(100, 0.05) <= KSCriticalValue(10000, 0.05) {
		t.Error("critical value not decreasing in n")
	}
}
