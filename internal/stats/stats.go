// Package stats provides the descriptive statistics and error metrics used
// throughout pptd: means, variances, quantiles, the MAE/RMSE utility
// metrics from the paper's evaluation, histograms, and streaming moments.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty reports a statistic requested over an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrLengthMismatch reports paired statistics over slices of unequal length.
var ErrLengthMismatch = errors.New("stats: length mismatch")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns sum(w_i x_i) / sum(w_i). It returns an error if the
// slices differ in length, are empty, or the weights sum to zero.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) != len(ws) {
		return 0, fmt.Errorf("%w: %d values, %d weights", ErrLengthMismatch, len(xs), len(ws))
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0, errors.New("stats: weights sum to zero")
	}
	return num / den, nil
}

// Variance returns the population variance of xs (denominator n), or NaN
// for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (denominator n-1),
// or NaN for fewer than two values.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs (average of the middle two for even
// lengths), or NaN for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the p-quantile of xs with linear interpolation
// (type-7 / the common spreadsheet convention), for p in [0, 1].
// It returns NaN for an empty slice or p outside [0, 1]. xs is not
// modified.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAE returns the mean absolute error between paired slices a and b —
// the paper's utility metric (L1 distance averaged over objects).
func MAE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a)), nil
}

// RMSE returns the root mean squared error between paired slices a and b.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// MaxAbsError returns the maximum absolute difference between paired
// slices a and b.
func MaxAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var maxd float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > maxd {
			maxd = d
		}
	}
	return maxd, nil
}

// MeanAbs returns the mean of |x_i| — used for the "average of added
// noise" axis in the paper's figures.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient between paired
// slices a and b. It returns an error for mismatched lengths, fewer than
// two points, or zero variance in either slice.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	if len(a) < 2 {
		return 0, ErrEmpty
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return cov / math.Sqrt(va*vb), nil
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// slice.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    xs[0],
		Max:    xs[0],
		Q25:    Quantile(xs, 0.25),
		Median: Median(xs),
		Q75:    Quantile(xs, 0.75),
	}
	for _, x := range xs[1:] {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s, nil
}

// String formats the summary on a single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g q25=%.4g med=%.4g q75=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Q25, s.Median, s.Q75, s.Max)
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
// Values exactly at max land in the last bin. It returns an error for an
// empty sample, non-positive bin count, or max <= min.
func Histogram(xs []float64, nbins int, min, max float64) ([]int, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: non-positive bin count %d", nbins)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: bad histogram range [%v, %v]", min, max)
	}
	counts := make([]int, nbins)
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		idx := int((x - min) / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		counts[idx]++
	}
	return counts, nil
}
