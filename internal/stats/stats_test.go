package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "simple", give: []float64{1, 2, 3}, want: 2},
		{name: "single", give: []float64{5}, want: 5},
		{name: "negative", give: []float64{-1, 1}, want: 0},
		{name: "fractional", give: []float64{0.5, 1.5, 2.5, 3.5}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("WeightedMean = %v, want 2.5", got)
	}

	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("mismatch error = %v, want ErrLengthMismatch", err)
	}
	if _, err := WeightedMean(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty error = %v, want ErrEmpty", err)
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("zero-weight-sum should error")
	}
}

func TestWeightedMeanEqualWeightsIsMean(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true
			}
		}
		ws := make([]float64, len(xs))
		for i := range ws {
			ws[i] = 1
		}
		wm, err := WeightedMean(xs, ws)
		if err != nil {
			return false
		}
		return almostEqual(wm, Mean(xs), 1e-6*(1+math.Abs(Mean(xs))))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := SampleVariance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7)
	}
	if !math.IsNaN(Variance(nil)) || !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("degenerate variance should be NaN")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		p    float64
		want float64
	}{
		{name: "odd median", give: []float64{3, 1, 2}, p: 0.5, want: 2},
		{name: "even median", give: []float64{4, 1, 3, 2}, p: 0.5, want: 2.5},
		{name: "min", give: []float64{5, 1, 9}, p: 0, want: 1},
		{name: "max", give: []float64{5, 1, 9}, p: 1, want: 9},
		{name: "interpolated q25", give: []float64{1, 2, 3, 4}, p: 0.25, want: 1.75},
		{name: "single", give: []float64{7}, p: 0.9, want: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Quantile(tt.give, tt.p); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Quantile(%v, %v) = %v, want %v", tt.give, tt.p, got, tt.want)
			}
		})
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile([]float64{1}, -0.1)) || !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Error("invalid quantile inputs should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, 1e-12) {
		t.Errorf("MAE = %v, want 1", got)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Error("MAE length mismatch not reported")
	}
	if _, err := MAE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("MAE empty not reported")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v, want sqrt(12.5)", got)
	}
}

func TestRMSEDominatesMAE(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) || math.Abs(a[i]) > 1e6 || math.Abs(b[i]) > 1e6 {
				return true
			}
		}
		mae, err1 := MAE(a, b)
		rmse, err2 := RMSE(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return rmse >= mae-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsError(t *testing.T) {
	got, err := MaxAbsError([]float64{1, 5, 2}, []float64{1, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("MaxAbsError = %v, want 4", got)
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-1, 1, -3, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("MeanAbs = %v, want 2", got)
	}
	if !math.IsNaN(MeanAbs(nil)) {
		t.Error("MeanAbs(nil) should be NaN")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	got, err := Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	c := []float64{10, 8, 6, 4, 2}
	got, err = Pearson(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson anti = %v, want -1", got)
	}
	if _, err := Pearson(a, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Error("zero variance should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); !errors.Is(err, ErrEmpty) {
		t.Error("too-short input should report ErrEmpty")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Min != 1 || s.Max != 4 || !almostEqual(s.Median, 2.5, 1e-12) {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Summarize(nil) should report ErrEmpty")
	}
}

func TestHistogram(t *testing.T) {
	counts, err := Histogram([]float64{0, 0.1, 0.5, 0.9, 1.0, -5, 7}, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 3 {
		t.Errorf("Histogram = %v, want [2 3]", counts)
	}
	if _, err := Histogram(nil, 2, 0, 1); !errors.Is(err, ErrEmpty) {
		t.Error("empty histogram not reported")
	}
	if _, err := Histogram([]float64{1}, 0, 0, 1); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := Histogram([]float64{1}, 2, 1, 1); err == nil {
		t.Error("degenerate range should error")
	}
}
