package stats

import "math"

// Welford accumulates streaming mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddAll folds every value of xs into the accumulator.
func (w *Welford) AddAll(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// N returns the number of accumulated values.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or NaN if no values were added.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running population variance (denominator n), or
// NaN if no values were added.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the running unbiased variance (denominator n-1),
// or NaN for fewer than two values.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into w (Chan et al. parallel variant),
// so partial streams can be combined.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n1, n2 := float64(w.n), float64(other.n)
	delta := other.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += other.m2 + delta*delta*n1*n2/total
	w.n += other.n
}
