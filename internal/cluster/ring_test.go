package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossOrder(t *testing.T) {
	workers := []string{"http://c:3", "http://a:1", "http://b:2"}
	r1, err := NewRing(workers, 0)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	r2, err := NewRing([]string{"http://b:2", "http://c:3", "http://a:1", "http://a:1"}, 0)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("user-%d", i)
		if r1.Owner(id) != r2.Owner(id) {
			t.Fatalf("user %s owned by %s vs %s under reordered worker list", id, r1.Owner(id), r2.Owner(id))
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r, err := NewRing(workers, 0)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("user-%d", i))]++
	}
	for _, w := range workers {
		got := counts[w]
		// With 64 vnodes per worker the split is not exact, but every
		// worker must carry a real share — a worker at under half its
		// fair share indicates broken point placement.
		if got < n/len(workers)/2 {
			t.Fatalf("worker %s owns only %d of %d users: %v", w, got, n, counts)
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty worker set accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, 0); err == nil {
		t.Fatal("empty worker name accepted")
	}
}
