package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"pptd/internal/crowd"
	"pptd/internal/obs"
	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// WorkerConfig parameterizes one cluster worker node.
type WorkerConfig struct {
	// Name labels the worker's campaign shard.
	Name string
	// Engine is the shard's stream configuration. It must match the
	// coordinator's (same objects, estimator, decay, privacy
	// parameters); the coordinator verifies the load-bearing fields at
	// boot.
	Engine stream.Config
	// Persistence, when set, makes the worker durable exactly like a
	// standalone StreamServer — and is required for segment shipping.
	Persistence *streamstore.Store
	// ShipTo, when set, starts a background shipper replicating the
	// worker's durable state to the sink (see Shipper).
	ShipTo Sink
	// ShipInterval is the shipping cadence (default 5s when ShipTo is
	// set).
	ShipInterval time.Duration
	// Metrics, when set, registers the shipper's counters.
	Metrics *obs.Registry
}

// Worker is one shard node of a cluster: an ordinary streaming server
// for the users the ring assigns here — ingest, ledger, durability all
// local — plus the coordinator-facing cluster RPCs and an optional
// segment shipper. Its window closes are driven by the coordinator, so
// WorkerConfig deliberately has no WindowInterval.
type Worker struct {
	srv     *crowd.StreamServer
	shipper *Shipper
}

// NewWorker starts a worker node.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ShipTo != nil && cfg.Persistence == nil {
		return nil, fmt.Errorf("%w: segment shipping requires persistence", ErrBadConfig)
	}
	srv, err := crowd.NewStreamServer(crowd.StreamServerConfig{
		Name:        cfg.Name,
		Engine:      cfg.Engine,
		Persistence: cfg.Persistence,
	})
	if err != nil {
		return nil, err
	}
	w := &Worker{srv: srv}
	if cfg.ShipTo != nil {
		interval := cfg.ShipInterval
		if interval <= 0 {
			interval = 5 * time.Second
		}
		shipper, err := NewShipper(cfg.Persistence, cfg.ShipTo, interval, cfg.Metrics)
		if err != nil {
			_ = srv.Close()
			return nil, err
		}
		w.shipper = shipper
		shipper.Start()
	}
	return w, nil
}

// Server exposes the underlying streaming server (for tests driving the
// worker directly).
func (w *Worker) Server() *crowd.StreamServer { return w.srv }

// Shipper exposes the worker's segment shipper (nil without ShipTo).
func (w *Worker) Shipper() *Shipper { return w.shipper }

// Register mounts the worker's routes: the full streaming API (the
// coordinator proxies claims here, and an operator can inspect the
// shard directly) plus the cluster close/commit RPCs.
func (w *Worker) Register(mux *http.ServeMux) {
	w.srv.Register(mux)
	w.srv.RegisterCluster(mux)
}

// Handler returns an http.Handler serving the worker's routes.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	w.Register(mux)
	return mux
}

// Close stops the shipper (running one final pass, so a graceful
// shutdown leaves the standby current) and then the streaming server
// (which snapshots durable state).
func (w *Worker) Close() error {
	var errs []error
	if w.shipper != nil {
		// The final shipping pass runs before the server's closing
		// snapshot; ship once more after it so the sink holds the final
		// state too.
		if err := w.shipper.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := w.srv.Close(); err != nil {
		errs = append(errs, err)
	}
	if w.shipper != nil {
		if err := w.shipper.SyncOnce(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
