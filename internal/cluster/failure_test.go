package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"pptd/internal/crowd"
	"pptd/internal/stream"
)

// findUserOwnedBy returns a user ID the ring assigns to the given
// worker.
func findUserOwnedBy(t *testing.T, ring *Ring, worker string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("probe-%04d", i)
		if ring.Owner(id) == worker {
			return id
		}
	}
	t.Fatalf("no user hashes to worker %s", worker)
	return ""
}

// TestWorkerDownAtClaim: a claim whose owning worker is unreachable
// fails with the typed worker_unavailable envelope naming the worker,
// while claims owned by live workers keep flowing.
func TestWorkerDownAtClaim(t *testing.T) {
	cfg := stream.Config{NumObjects: 3}
	workers := []*testWorker{startWorker(t, cfg, "w0"), startWorker(t, cfg, "w1")}
	defer func() {
		workers[1].closeAll(t)
		// workers[0] had its listener closed; close the rest of it.
		_ = workers[0].worker.Close()
		_ = workers[0].store.Close()
	}()
	coord, err := NewCoordinator(Config{Name: "down", Engine: cfg, Workers: []string{workers[0].url, workers[1].url}})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer func() {
		_ = coord.Close()
	}()

	// Serve the coordinator over real HTTP so the typed envelope is
	// tested end to end, client included.
	front := &http.Server{Handler: coord.Handler()}
	ln := newLocalListener(t)
	go func() {
		_ = front.Serve(ln)
	}()
	defer func() {
		_ = front.Close()
	}()
	client, err := crowd.NewClient("http://" + ln.Addr().String())
	if err != nil {
		t.Fatalf("client: %v", err)
	}

	victim := workers[0]
	victim.stopListening(t)
	ctx := context.Background()

	deadUser := findUserOwnedBy(t, coord.Ring(), victim.url)
	_, err = client.StreamSubmit(ctx, crowd.Submission{
		ClientID: deadUser, Claims: []crowd.Claim{{Object: 0, Value: 1}},
	})
	if !errors.Is(err, crowd.ErrWorkerUnavailable) {
		t.Fatalf("submit to dead worker: err = %v, want ErrWorkerUnavailable", err)
	}
	var httpErr *crowd.HTTPError
	if !errors.As(err, &httpErr) {
		t.Fatalf("submit to dead worker: no HTTPError in %v", err)
	}
	if httpErr.StatusCode != http.StatusServiceUnavailable || httpErr.Code != crowd.CodeWorkerUnavailable {
		t.Fatalf("submit to dead worker: status %d code %q, want 503 %q",
			httpErr.StatusCode, httpErr.Code, crowd.CodeWorkerUnavailable)
	}
	if !strings.Contains(httpErr.Message, victim.url) {
		t.Fatalf("error does not name the dead worker %s: %q", victim.url, httpErr.Message)
	}

	liveUser := findUserOwnedBy(t, coord.Ring(), workers[1].url)
	if _, err := client.StreamSubmit(ctx, crowd.Submission{
		ClientID: liveUser, Claims: []crowd.Claim{{Object: 0, Value: 1}},
	}); err != nil {
		t.Fatalf("submit to live worker: %v", err)
	}
}

// TestWorkerDownAtClose: when a worker is unreachable during a cluster
// close, the result is withheld — never partially merged — and the
// retried close after the worker returns publishes exactly what a
// single node would have (the surviving workers answer the retry from
// their export caches).
func TestWorkerDownAtClose(t *testing.T) {
	cfg := stream.Config{NumObjects: 4}
	workers := []*testWorker{startWorker(t, cfg, "w0"), startWorker(t, cfg, "w1"), startWorker(t, cfg, "w2")}
	defer func() {
		for _, w := range workers {
			w.closeAll(t)
		}
	}()
	urls := []string{workers[0].url, workers[1].url, workers[2].url}
	coord, err := NewCoordinator(Config{Name: "close-down", Engine: cfg, Workers: urls})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer func() {
		_ = coord.Close()
	}()

	// Single-node reference over the same claims.
	ref, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	defer func() {
		_ = ref.Close()
	}()

	ctx := context.Background()
	byURL := map[string]*testWorker{}
	for _, w := range workers {
		byURL[w.url] = w
	}
	// Submit enough users that every worker owns at least one.
	owned := map[string]bool{}
	for u := 0; u < 30; u++ {
		id := userID(u)
		claims := claimsFor(u, 1, cfg.NumObjects)
		if _, _, err := ref.Ingest(id, claims); err != nil {
			t.Fatalf("reference ingest: %v", err)
		}
		if _, err := coord.Submit(ctx, toSubmission(id, claims)); err != nil {
			t.Fatalf("cluster submit: %v", err)
		}
		owned[coord.Ring().Owner(id)] = true
	}
	if len(owned) != len(workers) {
		t.Fatalf("claims reached %d of %d workers; widen the user set", len(owned), len(workers))
	}

	victim := workers[2]
	victim.stopListening(t)
	if _, err := coord.CloseWindow(); !errors.Is(err, crowd.ErrWorkerUnavailable) {
		t.Fatalf("close with dead worker: err = %v, want ErrWorkerUnavailable", err)
	}
	// Withheld means withheld: no result, no window advance.
	if coord.Window() != 0 {
		t.Fatalf("coordinator advanced to window %d despite failed close", coord.Window())
	}
	if _, err := coord.Truths(); !errors.Is(err, crowd.ErrNotReady) {
		t.Fatalf("truths after failed close: err = %v, want ErrNotReady", err)
	}

	victim.relisten(t)
	refRes, err := ref.CloseWindow()
	if err != nil {
		t.Fatalf("reference close: %v", err)
	}
	got, err := coord.CloseWindow()
	if err != nil {
		t.Fatalf("retried close: %v", err)
	}
	// The retried close merged every worker's claims — including the
	// two survivors' cached exports — into the single-node answer.
	requireEquivalent(t, 1, crowd.WindowInfo(refRes), got)
}

// TestRingStableAcrossCoordinatorRestarts: a rebuilt coordinator over
// the same worker set (any order) routes every user to the same worker,
// so restarts never silently move a user's privacy ledger.
func TestRingStableAcrossCoordinatorRestarts(t *testing.T) {
	cfg := stream.Config{NumObjects: 2}
	workers := []*testWorker{startWorker(t, cfg, "w0"), startWorker(t, cfg, "w1"), startWorker(t, cfg, "w2")}
	defer func() {
		for _, w := range workers {
			w.closeAll(t)
		}
	}()
	urls := []string{workers[0].url, workers[1].url, workers[2].url}
	first, err := NewCoordinator(Config{Name: "ring", Engine: cfg, Workers: urls})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	owners := map[string]string{}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("user-%d", i)
		owners[id] = first.Ring().Owner(id)
	}
	if err := first.Close(); err != nil {
		t.Fatalf("close first coordinator: %v", err)
	}

	shuffled := append([]string(nil), urls...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	second, err := NewCoordinator(Config{Name: "ring", Engine: cfg, Workers: shuffled})
	if err != nil {
		t.Fatalf("restarted coordinator: %v", err)
	}
	defer func() {
		_ = second.Close()
	}()
	for id, want := range owners {
		if got := second.Ring().Owner(id); got != want {
			t.Fatalf("user %s moved from %s to %s across coordinator restart", id, want, got)
		}
	}
}
