package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent hash ring assigning user IDs to workers. Each
// worker contributes VNodes virtual points (FNV-64a of "worker#i"), so
// load spreads evenly and the assignment is a pure function of the
// worker set — two coordinators (or one across a restart) configured
// with the same workers route every user identically, which is what
// keeps each user's privacy ledger confined to a single worker.
type Ring struct {
	points  []ringPoint
	workers []string
}

type ringPoint struct {
	hash   uint64
	worker string
}

// DefaultVNodes is the virtual-node count per worker when the
// configuration does not set one.
const DefaultVNodes = 64

// NewRing builds a ring over the given worker names (base URLs, in a
// cluster). Order does not matter — workers are deduplicated and
// sorted, so any permutation of the same set yields the same ring.
func NewRing(workers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(workers))
	var uniq []string
	for _, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("cluster: empty worker name")
		}
		if !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one worker")
	}
	sort.Strings(uniq)
	r := &Ring{workers: uniq}
	for _, w := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(w + "#" + strconv.Itoa(i)), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A hash collision between two workers' virtual points must not
		// make ownership depend on sort order: break ties by name.
		return r.points[i].worker < r.points[j].worker
	})
	return r, nil
}

// Owner returns the worker owning the given user ID: the first virtual
// point at or after the ID's hash, wrapping around the ring.
func (r *Ring) Owner(id string) string {
	h := hash64(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}

// Workers returns the deduplicated, sorted worker set.
func (r *Ring) Workers() []string {
	out := make([]string, len(r.workers))
	copy(out, r.workers)
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// fmix64 is the murmur3 64-bit finalizer. Raw FNV-64a has almost no
// avalanche on trailing-byte differences, so similar strings
// ("worker#0".."worker#63", "user-000".."user-099") land in one tight
// cluster and the ring degenerates to a single owner; the finalizer
// diffuses every input bit across the whole hash.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
