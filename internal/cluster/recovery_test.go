package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pptd/internal/crowd"
	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// TestWorkerCrashMidCloseServesRetriedClose: a worker that crashes
// after closing a window for the coordinator — but before the commit —
// must come back (here: recovered from its shipped archive, so the
// shipper's always-re-ship of the cluster-close record is on the hook
// too) still able to serve the retried close from its durable export
// cache. The round then converges to the single-node answer.
func TestWorkerCrashMidCloseServesRetriedClose(t *testing.T) {
	cfg := baseConfig(stream.EstimatorCRH)
	workerCfg := cfg
	workerCfg.ClaimWAL = true
	workers := []*testWorker{startWorker(t, workerCfg, "w0"), startWorker(t, workerCfg, "w1")}
	defer func() {
		workers[1].closeAll(t)
		// workers[0] is deliberately crashed below; its replacement is
		// cleaned up separately.
	}()

	ref, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	defer func() {
		_ = ref.Close()
	}()

	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	coord, err := NewCoordinator(Config{
		Name: "mid-close", Engine: cfg, Workers: []string{workers[0].url, workers[1].url},
		HTTPClient: &http.Client{Transport: tr},
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer func() {
		_ = coord.Close()
	}()

	ctx := context.Background()
	for u := 0; u < 16; u++ {
		id := userID(u)
		claims := claimsFor(u, 1, cfg.NumObjects)
		if _, _, err := ref.Ingest(id, claims); err != nil {
			t.Fatalf("reference ingest: %v", err)
		}
		if _, err := coord.Submit(ctx, toSubmission(id, claims)); err != nil {
			t.Fatalf("cluster submit: %v", err)
		}
	}

	// Simulate the coordinator's close round reaching the victim and then
	// dying before any commit: close window 1 on the victim directly.
	victim := workers[0]
	victimClient, err := crowd.NewClient(victim.url)
	if err != nil {
		t.Fatalf("victim client: %v", err)
	}
	if _, err := victimClient.ClusterClose(ctx, crowd.ClusterCloseRequest{Window: 1, Force: true}); err != nil {
		t.Fatalf("direct close on victim: %v", err)
	}

	// Crash the victim: ship its durable state (snapshot, segments, AND
	// the cluster-close record), drop its listener, leak its engine, and
	// recover a fresh worker from the shipped archive on the same address.
	if err := victim.worker.Shipper().SyncOnce(); err != nil {
		t.Fatalf("ship victim state: %v", err)
	}
	victim.stopListening(t)
	store, err := streamstore.Open(victim.shipDir)
	if err != nil {
		t.Fatalf("open shipped archive: %v", err)
	}
	recovered, err := NewWorker(WorkerConfig{Name: "recovered", Engine: workerCfg, Persistence: store})
	if err != nil {
		t.Fatalf("recover worker from shipped archive: %v", err)
	}
	t.Cleanup(func() {
		_ = recovered.Close()
		_ = store.Close()
	})
	victim.worker = recovered
	victim.relisten(t)
	tr.CloseIdleConnections()

	// The recovered worker restored its pending, uncommitted export.
	status, err := victimClient.ClusterStatus(ctx)
	if err != nil {
		t.Fatalf("status after recovery: %v", err)
	}
	if status.Window != 1 || status.PendingWindow != 1 || status.CommittedWindow != 0 {
		t.Fatalf("recovered status = %+v, want window 1, pending 1, committed 0", status)
	}

	// The coordinator's (retried) close must now converge: the recovered
	// victim answers from its restored export cache, the other worker
	// closes fresh, and the merged result matches the single node.
	refRes, err := ref.CloseWindow()
	if err != nil {
		t.Fatalf("reference close: %v", err)
	}
	got, err := coord.CloseWindow()
	if err != nil {
		t.Fatalf("cluster close after victim recovery: %v", err)
	}
	requireEquivalent(t, 1, crowd.WindowInfo(refRes), got)
}

// TestCoordinatorRestartRedrivesUncommittedClose: when a coordinator
// dies after every worker closed a window but before the merged carries
// were committed, a freshly booted coordinator must detect the pending
// round (workers report a pending export newer than their last commit)
// and re-drive the merge/commit before serving — publishing the result
// and keeping later windows equivalent to a single node.
func TestCoordinatorRestartRedrivesUncommittedClose(t *testing.T) {
	cfg := baseConfig(stream.EstimatorCRH)
	workerCfg := cfg
	workerCfg.ClaimWAL = true
	workers := []*testWorker{startWorker(t, workerCfg, "w0"), startWorker(t, workerCfg, "w1")}
	defer func() {
		for _, w := range workers {
			w.closeAll(t)
		}
	}()
	urls := []string{workers[0].url, workers[1].url}

	ref, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	defer func() {
		_ = ref.Close()
	}()

	// Window 1 claims go straight to the owning workers (no coordinator
	// is alive yet — we are reconstructing the state one leaves behind).
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	clients := map[string]*crowd.Client{}
	for _, u := range urls {
		cl, err := crowd.NewClient(u)
		if err != nil {
			t.Fatalf("client %s: %v", u, err)
		}
		clients[u] = cl
	}
	ctx := context.Background()
	for u := 0; u < 16; u++ {
		id := userID(u)
		claims := claimsFor(u, 1, cfg.NumObjects)
		if _, _, err := ref.Ingest(id, claims); err != nil {
			t.Fatalf("reference ingest: %v", err)
		}
		if _, err := clients[ring.Owner(id)].StreamSubmit(ctx, toSubmission(id, claims)); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
	}

	// The doomed coordinator's close round: every worker closes window 1
	// and durably caches its export — then the coordinator dies before
	// merging or committing anything.
	for _, u := range urls {
		if _, err := clients[u].ClusterClose(ctx, crowd.ClusterCloseRequest{Window: 1, Force: true}); err != nil {
			t.Fatalf("close on %s: %v", u, err)
		}
	}

	// A new coordinator boots against the half-closed cluster: it must
	// re-drive window 1's merge/commit and publish its result.
	coord, err := NewCoordinator(Config{Name: "redrive", Engine: cfg, Workers: urls})
	if err != nil {
		t.Fatalf("coordinator over pending round: %v", err)
	}
	defer func() {
		_ = coord.Close()
	}()
	if coord.Window() != 1 {
		t.Fatalf("coordinator booted at window %d, want 1", coord.Window())
	}
	refRes, err := ref.CloseWindow()
	if err != nil {
		t.Fatalf("reference close: %v", err)
	}
	got, err := coord.Truths()
	if err != nil {
		t.Fatalf("truths after re-drive: %v", err)
	}
	requireEquivalent(t, 1, crowd.WindowInfo(refRes), got)
	for _, u := range urls {
		status, err := clients[u].ClusterStatus(ctx)
		if err != nil {
			t.Fatalf("status %s: %v", u, err)
		}
		if status.CommittedWindow != 1 {
			t.Fatalf("worker %s committed window = %d after re-drive, want 1", u, status.CommittedWindow)
		}
	}

	// Window 2 through the new coordinator stays equivalent — the proof
	// that the re-driven carries (not stale pre-close ones) were applied.
	for u := 0; u < 16; u++ {
		if !submits(u, 2) {
			continue
		}
		id := userID(u)
		claims := claimsFor(u, 2, cfg.NumObjects)
		if _, _, err := ref.Ingest(id, claims); err != nil {
			t.Fatalf("reference ingest window 2: %v", err)
		}
		if _, err := coord.Submit(ctx, toSubmission(id, claims)); err != nil {
			t.Fatalf("cluster submit window 2: %v", err)
		}
	}
	refRes2, err := ref.CloseWindow()
	if err != nil {
		t.Fatalf("reference close window 2: %v", err)
	}
	got2, err := coord.CloseWindow()
	if err != nil {
		t.Fatalf("cluster close window 2: %v", err)
	}
	requireEquivalent(t, 2, crowd.WindowInfo(refRes2), got2)
}

// recordingSink wraps a DirSink and records every Put by name.
type recordingSink struct {
	*DirSink
	puts []string
}

func (r *recordingSink) Put(name string, data []byte) error {
	r.puts = append(r.puts, name)
	return r.DirSink.Put(name, data)
}

// TestShipperSkipsUnchangedMutableFiles: a shipping pass re-ships only
// what moved — an unchanged journal does not re-ship, while the
// snapshot and the cluster-close record (atomically rewritten, possibly
// at an unchanged size) re-ship on every pass.
func TestShipperSkipsUnchangedMutableFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := streamstore.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer func() {
		_ = store.Close()
	}()
	cfg := baseConfig(stream.EstimatorCRH)
	cfg.Ledger = store
	eng, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	defer func() {
		_ = eng.Close()
	}()
	if _, _, err := eng.Ingest("alice", []stream.Claim{{Object: 0, Value: 1}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := store.SnapshotEngine(eng); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := store.SaveClusterClose(&streamstore.ClusterCloseState{
		Window: 1, State: &stream.EngineState{NumObjects: cfg.NumObjects},
	}); err != nil {
		t.Fatalf("save cluster close: %v", err)
	}

	inner, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatalf("dir sink: %v", err)
	}
	sink := &recordingSink{DirSink: inner}
	shipper, err := NewShipper(store, sink, time.Hour, nil)
	if err != nil {
		t.Fatalf("shipper: %v", err)
	}
	if err := shipper.SyncOnce(); err != nil {
		t.Fatalf("first pass: %v", err)
	}
	if len(sink.puts) == 0 {
		t.Fatal("first pass shipped nothing")
	}
	first := append([]string(nil), sink.puts...)

	// Second pass with nothing changed at the source.
	sink.puts = nil
	if err := shipper.SyncOnce(); err != nil {
		t.Fatalf("second pass: %v", err)
	}
	want := map[string]bool{
		streamstore.SnapshotFileName:     true,
		streamstore.ClusterCloseFileName: true,
	}
	got := map[string]bool{}
	for _, name := range sink.puts {
		if !want[name] {
			t.Fatalf("unchanged file %q re-shipped on the second pass (first pass shipped %v)", name, first)
		}
		got[name] = true
	}
	for name := range want {
		if !got[name] {
			t.Fatalf("%q did not re-ship on the second pass (shipped %v)", name, sink.puts)
		}
	}
}

// TestFollowerBodyCapAndAuth: the follower's ingress limits — a PUT
// over the per-file cap is refused with 413 before buffering, and with
// a token configured both routes refuse unauthenticated (or
// wrong-token) requests with 401 while a token-bearing HTTPSink works.
func TestFollowerBodyCapAndAuth(t *testing.T) {
	const token = "s3cret"
	f, err := NewFollowerWith(t.TempDir(), FollowerOptions{MaxFileBytes: 64, AuthToken: token})
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// No token: both routes answer 401.
	bare, err := NewHTTPSink(srv.URL, nil)
	if err != nil {
		t.Fatalf("sink: %v", err)
	}
	if _, err := bare.Have(); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("unauthenticated manifest: err = %v, want 401", err)
	}
	if err := bare.Put(streamstore.SnapshotFileName, []byte("x")); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("unauthenticated put: err = %v, want 401", err)
	}
	if err := bare.WithAuthToken("wrong").Put(streamstore.SnapshotFileName, []byte("x")); err == nil ||
		!strings.Contains(err.Error(), "401") {
		t.Fatalf("wrong-token put: err = %v, want 401", err)
	}

	authed, err := NewHTTPSink(srv.URL, nil)
	if err != nil {
		t.Fatalf("sink: %v", err)
	}
	authed.WithAuthToken(token)
	if err := authed.Put(streamstore.SnapshotFileName, []byte("small enough")); err != nil {
		t.Fatalf("authorized put: %v", err)
	}
	have, err := authed.Have()
	if err != nil {
		t.Fatalf("authorized manifest: %v", err)
	}
	if have[streamstore.SnapshotFileName] != int64(len("small enough")) {
		t.Fatalf("manifest = %v, want %s at %d bytes", have, streamstore.SnapshotFileName, len("small enough"))
	}

	// One byte over the cap: refused with 413, nothing overwritten.
	big := make([]byte, 65)
	if err := authed.Put(streamstore.SnapshotFileName, big); err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("oversized put: err = %v, want 413", err)
	}
	have, err = authed.Have()
	if err != nil {
		t.Fatalf("manifest after oversized put: %v", err)
	}
	if have[streamstore.SnapshotFileName] != int64(len("small enough")) {
		t.Fatalf("oversized put altered the replica: manifest = %v", have)
	}
}
