package cluster

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"pptd/internal/crowd"
	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// countingSink wraps a Sink and records every Put.
type countingSink struct {
	Sink
	puts []string
}

func (c *countingSink) Put(name string, data []byte) error {
	c.puts = append(c.puts, name)
	return c.Sink.Put(name, data)
}

func shipperEngineConfig() stream.Config {
	return stream.Config{
		NumObjects: 4,
		Lambda1:    0.5,
		Lambda2:    1.0,
		Delta:      1e-5,
		ClaimWAL:   true,
	}
}

// newDurableServer opens a durable stream server over a fresh store.
func newDurableServer(t *testing.T, dir string, opts streamstore.Options) (*crowd.StreamServer, *streamstore.Store) {
	t.Helper()
	store, err := streamstore.OpenWith(dir, opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv, err := crowd.NewStreamServer(crowd.StreamServerConfig{
		Name: "ship", Engine: shipperEngineConfig(), Persistence: store,
	})
	if err != nil {
		t.Fatalf("stream server: %v", err)
	}
	return srv, store
}

func submitN(t *testing.T, srv *crowd.StreamServer, users int, window int) {
	t.Helper()
	for u := 0; u < users; u++ {
		sub := crowd.Submission{
			ClientID: fmt.Sprintf("user-%03d", u),
			Claims: []crowd.Claim{
				{Object: u % 4, Value: float64(u + window)},
				{Object: (u + 1) % 4, Value: float64(u) / 3},
			},
		}
		if _, err := srv.Submit(sub); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
}

// TestShipAndRestore: a state directory shipped to a DirSink restores
// into a server whose next window matches the original's exactly —
// point-in-time restore from the archive alone.
func TestShipAndRestore(t *testing.T) {
	srv, store := newDurableServer(t, t.TempDir(), streamstore.Options{})
	defer func() {
		_ = srv.Close()
		_ = store.Close()
	}()
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatalf("sink: %v", err)
	}
	shipper, err := NewShipper(store, sink, time.Hour, nil)
	if err != nil {
		t.Fatalf("shipper: %v", err)
	}

	// Two closed windows plus claims already in the open third window:
	// the restore must carry all of it (the open window's claims ride
	// the claim WAL).
	for w := 1; w <= 2; w++ {
		submitN(t, srv, 12, w)
		if _, err := srv.CloseWindow(); err != nil {
			t.Fatalf("close window %d: %v", w, err)
		}
	}
	submitN(t, srv, 8, 3)
	if err := shipper.SyncOnce(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	restored, restoredStore := newDurableServer(t, sink.Dir(), streamstore.Options{})
	defer func() {
		_ = restored.Close()
		_ = restoredStore.Close()
	}()
	if got, want := restored.Engine().Window(), srv.Engine().Window(); got != want {
		t.Fatalf("restored at %d closed windows, want %d", got, want)
	}
	if got, want := restored.Engine().TotalClaims(), srv.Engine().TotalClaims(); got != want {
		t.Fatalf("restored TotalClaims = %d, want %d", got, want)
	}
	// Closing the open window on both must publish the same estimate:
	// the archive held every claim the original had.
	origRes, err := srv.CloseWindow()
	if err != nil {
		t.Fatalf("original close: %v", err)
	}
	restRes, err := restored.CloseWindow()
	if err != nil {
		t.Fatalf("restored close: %v", err)
	}
	if restRes.Window != origRes.Window {
		t.Fatalf("restored closed window %d, original %d", restRes.Window, origRes.Window)
	}
	for o := range origRes.Truths {
		if math.Abs(restRes.Truths[o]-origRes.Truths[o]) > 1e-12 {
			t.Fatalf("object %d: restored truth %v, original %v", o, restRes.Truths[o], origRes.Truths[o])
		}
	}
}

// TestShipperSkipsSealedSegments: sealed journal segments ship once;
// later passes re-ship only mutable files.
func TestShipperSkipsSealedSegments(t *testing.T) {
	// Tiny segments and no window closes (hence no snapshots, which
	// would compact sealed segments away): many charges roll several
	// sealed segments.
	srv, store := newDurableServer(t, t.TempDir(), streamstore.Options{SegmentBytes: 512})
	defer func() {
		_ = srv.Close()
		_ = store.Close()
	}()
	submitN(t, srv, 60, 1)

	dirSink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatalf("sink: %v", err)
	}
	sink := &countingSink{Sink: dirSink}
	shipper, err := NewShipper(store, sink, time.Hour, nil)
	if err != nil {
		t.Fatalf("shipper: %v", err)
	}
	if err := shipper.SyncOnce(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	firstWALs := walNames(sink.puts)
	if len(firstWALs) < 2 {
		t.Fatalf("expected several journal segments in first pass, shipped %v", sink.puts)
	}

	sink.puts = nil
	if err := shipper.SyncOnce(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	secondWALs := walNames(sink.puts)
	// Only the active (highest-numbered) segment may ship again.
	active := firstWALs[len(firstWALs)-1]
	for _, name := range secondWALs {
		if name != active {
			t.Fatalf("sealed segment %s re-shipped on an unchanged store (pass shipped %v)", name, sink.puts)
		}
	}
}

func walNames(puts []string) []string {
	var wals []string
	for _, name := range puts {
		if strings.HasSuffix(name, ".wal") {
			wals = append(wals, name)
		}
	}
	sort.Strings(wals)
	return wals
}

// TestFollowerHTTPShipping: shipping over HTTP to a Follower leaves a
// directory a server can recover from, and the follower refuses
// non-shippable names.
func TestFollowerHTTPShipping(t *testing.T) {
	srv, store := newDurableServer(t, t.TempDir(), streamstore.Options{})
	defer func() {
		_ = srv.Close()
		_ = store.Close()
	}()
	submitN(t, srv, 10, 1)
	if _, err := srv.CloseWindow(); err != nil {
		t.Fatalf("close: %v", err)
	}

	follower, err := NewFollower(t.TempDir())
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	ts := httptest.NewServer(follower.Handler())
	defer ts.Close()

	sink, err := NewHTTPSink(ts.URL, nil)
	if err != nil {
		t.Fatalf("http sink: %v", err)
	}
	shipper, err := NewShipper(store, sink, time.Hour, nil)
	if err != nil {
		t.Fatalf("shipper: %v", err)
	}
	if err := shipper.SyncOnce(); err != nil {
		t.Fatalf("sync over http: %v", err)
	}

	restored, restoredStore := newDurableServer(t, follower.Dir(), streamstore.Options{})
	defer func() {
		_ = restored.Close()
		_ = restoredStore.Close()
	}()
	info, err := restored.Truths()
	if err != nil {
		t.Fatalf("restored truths: %v", err)
	}
	if info.Window != 1 {
		t.Fatalf("restored follower serves window %d, want 1", info.Window)
	}

	// A name the store would never emit is refused, shippable or not on
	// disk: the follower must not become an arbitrary file drop.
	req, err := http.NewRequest(http.MethodPut, ts.URL+PathFollowerFiles+"evil.txt", strings.NewReader("x"))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT evil.txt: status %d, want 400", resp.StatusCode)
	}
}
