package cluster

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pptd/internal/crowd"
	"pptd/internal/streamstore"
)

// HTTP segment shipping: a Follower exposes a replica directory over
// two routes — a manifest of what it holds and a PUT endpoint for
// individual files — and an HTTPSink is the shipper-side client for
// them. Together they turn any reachable node into a warm standby:
// point the worker's shipper at the follower's URL, and recovering the
// standby is opening a streamstore on its directory.
const (
	// PathFollowerManifest serves the follower's current files and sizes
	// (GET), the remote form of Sink.Have.
	PathFollowerManifest = "/v1/follower/manifest"
	// PathFollowerFiles accepts one shipped file per request
	// (PUT /v1/follower/files/<name>), the remote form of Sink.Put. Only
	// names streamstore.ValidShippableName accepts are written.
	PathFollowerFiles = "/v1/follower/files/"
)

// defaultMaxShippedFileBytes caps one shipped file's body when
// FollowerOptions.MaxFileBytes is zero: far above any default-tuned
// state file (4 MiB journal segments; snapshots grow with the user
// population), small enough that an unauthenticated client cannot make
// the follower buffer unbounded memory per request.
const defaultMaxShippedFileBytes = 512 << 20

// FollowerOptions tunes a follower's ingress limits.
type FollowerOptions struct {
	// MaxFileBytes caps the size of one shipped file; a larger PUT is
	// refused with 413 before it is buffered. Zero means 512 MiB. Size
	// the cap to the source store's biggest artifact (usually the
	// snapshot).
	MaxFileBytes int64
	// AuthToken, when non-empty, requires every follower request to
	// carry "Authorization: Bearer <token>"; requests without it are
	// refused with 401. Empty leaves the routes open — acceptable only
	// on a trusted network, since anyone who can reach the port could
	// otherwise overwrite replica files. Pair with
	// HTTPSink.WithAuthToken on the shipping side.
	AuthToken string
}

// Follower receives shipped files into a local directory. Mount its
// Handler on any mux; restore by opening a streamstore on Dir.
type Follower struct {
	sink     *DirSink
	maxBytes int64
	token    string
}

// NewFollower returns a follower writing into dir (created if needed)
// with default options: 512 MiB per-file cap, no authentication.
func NewFollower(dir string) (*Follower, error) {
	return NewFollowerWith(dir, FollowerOptions{})
}

// NewFollowerWith returns a follower writing into dir with the given
// ingress limits.
func NewFollowerWith(dir string, opts FollowerOptions) (*Follower, error) {
	if opts.MaxFileBytes < 0 {
		return nil, fmt.Errorf("%w: MaxFileBytes = %d", ErrBadConfig, opts.MaxFileBytes)
	}
	maxBytes := opts.MaxFileBytes
	if maxBytes == 0 {
		maxBytes = defaultMaxShippedFileBytes
	}
	sink, err := NewDirSink(dir)
	if err != nil {
		return nil, err
	}
	return &Follower{sink: sink, maxBytes: maxBytes, token: opts.AuthToken}, nil
}

// authorized enforces the optional shared bearer token on one follower
// request, answering 401 itself when the check fails.
func (f *Follower) authorized(w http.ResponseWriter, r *http.Request) bool {
	if f.token == "" {
		return true
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+f.token)) == 1 {
		return true
	}
	crowd.WriteError(w, http.StatusUnauthorized, crowd.CodeUnauthorized, "missing or wrong follower auth token")
	return false
}

// Dir returns the replica directory.
func (f *Follower) Dir() string { return f.sink.Dir() }

// Register mounts the follower routes on mux.
func (f *Follower) Register(mux *http.ServeMux) {
	mux.HandleFunc(PathFollowerManifest, crowd.EchoRequestID(f.handleManifest))
	mux.HandleFunc(PathFollowerFiles, crowd.EchoRequestID(f.handleFile))
}

// Handler returns an http.Handler serving just the follower routes.
func (f *Follower) Handler() http.Handler {
	mux := http.NewServeMux()
	f.Register(mux)
	return mux
}

func (f *Follower) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		crowd.WriteError(w, http.StatusMethodNotAllowed, crowd.CodeMethodNotAllowed, "GET only")
		return
	}
	if !f.authorized(w, r) {
		return
	}
	have, err := f.sink.Have()
	if err != nil {
		crowd.WriteWireError(w, err)
		return
	}
	crowd.WriteJSON(w, http.StatusOK, have)
}

func (f *Follower) handleFile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut {
		crowd.WriteError(w, http.StatusMethodNotAllowed, crowd.CodeMethodNotAllowed, "PUT only")
		return
	}
	if !f.authorized(w, r) {
		return
	}
	name := strings.TrimPrefix(r.URL.Path, PathFollowerFiles)
	if !streamstore.ValidShippableName(name) {
		crowd.WriteError(w, http.StatusBadRequest, crowd.CodeBadRequest,
			fmt.Sprintf("%q is not a shippable file name", name))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.maxBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			crowd.WriteError(w, http.StatusRequestEntityTooLarge, crowd.CodePayloadTooLarge,
				fmt.Sprintf("%s exceeds the follower's %d-byte file cap", name, tooBig.Limit))
			return
		}
		crowd.WriteError(w, http.StatusBadRequest, crowd.CodeBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	if err := f.sink.Put(name, data); err != nil {
		crowd.WriteWireError(w, err)
		return
	}
	crowd.WriteJSON(w, http.StatusOK, map[string]any{"name": name, "size": len(data)})
}

// HTTPSink ships to a remote Follower.
type HTTPSink struct {
	baseURL string
	httpc   *http.Client
	token   string
}

// NewHTTPSink returns a sink shipping to the follower at baseURL.
// httpc may be nil (a default client is used).
func NewHTTPSink(baseURL string, httpc *http.Client) (*HTTPSink, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("cluster: empty follower URL")
	}
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &HTTPSink{baseURL: baseURL, httpc: httpc}, nil
}

// WithAuthToken returns the sink sending "Authorization: Bearer token"
// on every request — the client half of FollowerOptions.AuthToken. An
// empty token sends no header.
func (h *HTTPSink) WithAuthToken(token string) *HTTPSink {
	h.token = token
	return h
}

// authorize attaches the shared bearer token, when configured.
func (h *HTTPSink) authorize(req *http.Request) {
	if h.token != "" {
		req.Header.Set("Authorization", "Bearer "+h.token)
	}
}

// Have implements Sink via the follower's manifest.
func (h *HTTPSink) Have() (map[string]int64, error) {
	req, err := http.NewRequest(http.MethodGet, h.baseURL+PathFollowerManifest, nil)
	if err != nil {
		return nil, err
	}
	h.authorize(req)
	resp, err := h.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: follower manifest: status %d", resp.StatusCode)
	}
	var have map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&have); err != nil {
		return nil, fmt.Errorf("cluster: decode follower manifest: %w", err)
	}
	return have, nil
}

// Put implements Sink via the follower's file endpoint.
func (h *HTTPSink) Put(name string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, h.baseURL+PathFollowerFiles+name, bytes.NewReader(data))
	if err != nil {
		return err
	}
	h.authorize(req)
	resp, err := h.httpc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: follower rejected %s: status %d: %s", name, resp.StatusCode, body)
	}
	return nil
}
