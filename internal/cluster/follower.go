package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pptd/internal/crowd"
	"pptd/internal/streamstore"
)

// HTTP segment shipping: a Follower exposes a replica directory over
// two routes — a manifest of what it holds and a PUT endpoint for
// individual files — and an HTTPSink is the shipper-side client for
// them. Together they turn any reachable node into a warm standby:
// point the worker's shipper at the follower's URL, and recovering the
// standby is opening a streamstore on its directory.
const (
	// PathFollowerManifest serves the follower's current files and sizes
	// (GET), the remote form of Sink.Have.
	PathFollowerManifest = "/v1/follower/manifest"
	// PathFollowerFiles accepts one shipped file per request
	// (PUT /v1/follower/files/<name>), the remote form of Sink.Put. Only
	// names streamstore.ValidShippableName accepts are written.
	PathFollowerFiles = "/v1/follower/files/"
)

// Follower receives shipped files into a local directory. Mount its
// Handler on any mux; restore by opening a streamstore on Dir.
type Follower struct {
	sink *DirSink
}

// NewFollower returns a follower writing into dir (created if needed).
func NewFollower(dir string) (*Follower, error) {
	sink, err := NewDirSink(dir)
	if err != nil {
		return nil, err
	}
	return &Follower{sink: sink}, nil
}

// Dir returns the replica directory.
func (f *Follower) Dir() string { return f.sink.Dir() }

// Register mounts the follower routes on mux.
func (f *Follower) Register(mux *http.ServeMux) {
	mux.HandleFunc(PathFollowerManifest, crowd.EchoRequestID(f.handleManifest))
	mux.HandleFunc(PathFollowerFiles, crowd.EchoRequestID(f.handleFile))
}

// Handler returns an http.Handler serving just the follower routes.
func (f *Follower) Handler() http.Handler {
	mux := http.NewServeMux()
	f.Register(mux)
	return mux
}

func (f *Follower) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		crowd.WriteError(w, http.StatusMethodNotAllowed, crowd.CodeMethodNotAllowed, "GET only")
		return
	}
	have, err := f.sink.Have()
	if err != nil {
		crowd.WriteWireError(w, err)
		return
	}
	crowd.WriteJSON(w, http.StatusOK, have)
}

func (f *Follower) handleFile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut {
		crowd.WriteError(w, http.StatusMethodNotAllowed, crowd.CodeMethodNotAllowed, "PUT only")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, PathFollowerFiles)
	if !streamstore.ValidShippableName(name) {
		crowd.WriteError(w, http.StatusBadRequest, crowd.CodeBadRequest,
			fmt.Sprintf("%q is not a shippable file name", name))
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		crowd.WriteError(w, http.StatusBadRequest, crowd.CodeBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	if err := f.sink.Put(name, data); err != nil {
		crowd.WriteWireError(w, err)
		return
	}
	crowd.WriteJSON(w, http.StatusOK, map[string]any{"name": name, "size": len(data)})
}

// HTTPSink ships to a remote Follower.
type HTTPSink struct {
	baseURL string
	httpc   *http.Client
}

// NewHTTPSink returns a sink shipping to the follower at baseURL.
// httpc may be nil (a default client is used).
func NewHTTPSink(baseURL string, httpc *http.Client) (*HTTPSink, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("cluster: empty follower URL")
	}
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &HTTPSink{baseURL: baseURL, httpc: httpc}, nil
}

// Have implements Sink via the follower's manifest.
func (h *HTTPSink) Have() (map[string]int64, error) {
	resp, err := h.httpc.Get(h.baseURL + PathFollowerManifest)
	if err != nil {
		return nil, err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: follower manifest: status %d", resp.StatusCode)
	}
	var have map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&have); err != nil {
		return nil, fmt.Errorf("cluster: decode follower manifest: %w", err)
	}
	return have, nil
}

// Put implements Sink via the follower's file endpoint.
func (h *HTTPSink) Put(name string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, h.baseURL+PathFollowerFiles+name, bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp, err := h.httpc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: follower rejected %s: status %d: %s", name, resp.StatusCode, body)
	}
	return nil
}
