// Package cluster scales one streaming truth-discovery campaign across
// multiple nodes without changing what it publishes: a Coordinator
// shards users over N workers by consistent hashing (each user's
// privacy ledger lives entirely on its owning worker), drives
// synchronized window closes, and merges the workers' raw sufficient
// statistics so the cluster publishes exactly the estimate a single
// node would have produced over the same claims.
//
// The close protocol has three steps, each idempotent so a partially
// failed close converges under retry instead of publishing a partially
// merged result:
//
//  1. Close-export. The coordinator asks every worker to close window W
//     (POST /v1/cluster/close). Workers quiesce ingest and export their
//     raw pre-close statistics WITHOUT estimating; the first round
//     probes with force=false, and if every worker reports an empty
//     window the close fails with ErrEmptyWindow exactly like a single
//     node — nothing advances anywhere. Otherwise a second round forces
//     the empty minority closed (their users still decay, as they would
//     on one node). A worker retried after a partial close answers from
//     its per-window export cache, returning identical state.
//  2. Merge-estimate. The per-worker exports cover disjoint user sets,
//     so stream.MergeStates unions them losslessly; the coordinator
//     loads the union into an ephemeral engine and runs the one true
//     estimation over it. Identical statistics in, identical estimate
//     out — this is why the cluster-vs-single-node equivalence holds to
//     within floating-point noise rather than approximately.
//  3. Commit. The merged post-estimate carry weights and estimator
//     state are written back to each user's owning worker
//     (POST /v1/cluster/commit), where the deferred idle-user eviction
//     finally runs. Only after every worker committed does the
//     coordinator advance its window and publish the result; any
//     failure withholds the result and leaves the whole round
//     retryable.
//
// The idempotence is durable on persistent workers: each worker writes
// its per-window export to disk before the post-close snapshot and
// marks it committed only after the merged carries are snapshotted, so
// the round converges under retry even across worker crashes at any
// point. A coordinator that boots against workers whose records say
// "closed but never committed" (GET /v1/cluster/status) re-drives the
// merge/commit from the cached exports before serving — the carries of
// that window are applied exactly once-or-again, never skipped.
//
// Ingest never crosses shards: POST /v1/stream/claims is forwarded to
// the user's owning worker, whose local (epsilon, delta) ledger decides
// duplicate-window and budget-exhaustion exactly as a single node
// would. A worker that cannot be reached fails the claim with the typed
// worker_unavailable envelope naming the worker; nothing was ingested,
// so the client can simply retry.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pptd/internal/crowd"
	"pptd/internal/obs"
	"pptd/internal/stream"
)

// ErrBadConfig reports an invalid coordinator configuration.
var ErrBadConfig = errors.New("cluster: invalid config")

// Config parameterizes a Coordinator.
type Config struct {
	// Name labels the campaign (served on /v1/stream/campaign).
	Name string
	// Engine is the stream configuration shared by every worker; the
	// coordinator uses it to build the ephemeral merge engine, so
	// estimator, decay, carry, and privacy parameters must match the
	// workers'. Persistence fields (Ledger, UserStore, residency caps,
	// ClaimWAL, Metrics) are ignored — durability lives on the workers.
	Engine stream.Config
	// Workers lists the worker base URLs (e.g. "http://10.0.0.2:8080").
	// The set defines the hash ring: the same set, in any order, routes
	// every user identically.
	Workers []string
	// VNodes is the virtual-node count per worker on the hash ring
	// (default DefaultVNodes).
	VNodes int
	// WindowInterval, when positive, drives cluster-wide window closes
	// on a ticker, like StreamServerConfig.WindowInterval on one node.
	WindowInterval time.Duration
	// CloseRetries is how many times each per-worker close/commit RPC is
	// retried within one CloseWindow call before the round is abandoned
	// (default 2). The protocol is idempotent, so an abandoned round is
	// simply re-run by the next tick.
	CloseRetries int
	// HTTPClient overrides the HTTP client used for worker RPCs.
	HTTPClient *http.Client
	// MaxRequestBytes caps the POST /v1/stream/claims request body on
	// the coordinator's front door (matching the workers' own caps);
	// oversized bodies get the 413 payload_too_large envelope. Zero
	// means crowd.DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// Metrics, when set, registers the coordinator's routing and close
	// counters.
	Metrics *obs.Registry
}

// Coordinator fronts a sharded cluster: it serves the standard
// streaming wire API (campaign, claims, truths, window, stats) while
// routing ingest to workers and running the merge-estimate close
// protocol. Safe for concurrent use.
type Coordinator struct {
	name      string
	engCfg    stream.Config
	estimator string
	epsWindow float64
	ring      *Ring
	clients   map[string]*crowd.Client
	retries   int
	maxBytes  int64 // front-door request-body cap

	// windowMu serializes cluster window closes (manual and ticker).
	windowMu sync.Mutex
	window   atomic.Int64 // closed windows, mutated only under windowMu

	totalClaims atomic.Int64

	histMu  sync.RWMutex
	history []crowd.StreamWindowInfo
	histCap int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	tickMu  sync.Mutex
	tickErr error

	routedClaims *obs.CounterVec
	routeErrors  *obs.CounterVec
	windowCloses *obs.Counter
	closeRetries *obs.Counter
}

// NewCoordinator validates the configuration, contacts every worker
// (all must be reachable and agree on the window count — a cluster must
// not boot torn), and returns a serving coordinator. Close it to stop
// the window ticker.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("%w: no workers", ErrBadConfig)
	}
	if cfg.WindowInterval < 0 {
		return nil, fmt.Errorf("%w: WindowInterval = %v", ErrBadConfig, cfg.WindowInterval)
	}
	if cfg.CloseRetries < 0 {
		return nil, fmt.Errorf("%w: CloseRetries = %d", ErrBadConfig, cfg.CloseRetries)
	}
	if cfg.MaxRequestBytes < 0 {
		return nil, fmt.Errorf("%w: MaxRequestBytes = %d", ErrBadConfig, cfg.MaxRequestBytes)
	}
	maxBytes := cfg.MaxRequestBytes
	if maxBytes == 0 {
		maxBytes = crowd.DefaultMaxRequestBytes
	}
	retries := cfg.CloseRetries
	if retries == 0 {
		retries = 2
	}
	// Validate the engine configuration the same way a worker would, by
	// building (and immediately closing) a merge engine from it.
	probe, err := stream.New(mergeConfig(cfg.Engine))
	if err != nil {
		return nil, fmt.Errorf("cluster: engine config: %w", err)
	}
	estimator := probe.Estimator()
	if estimator == "" {
		estimator = stream.EstimatorCRH
	}
	epsWindow := probe.EpsilonPerWindow()
	_ = probe.Close()

	ring, err := NewRing(cfg.Workers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	httpc := cfg.HTTPClient
	clients := make(map[string]*crowd.Client, len(ring.Workers()))
	for _, w := range ring.Workers() {
		var opts []crowd.ClientOption
		if httpc != nil {
			opts = append(opts, crowd.WithHTTPClient(httpc))
		}
		cl, err := crowd.NewClient(w, opts...)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %s: %w", w, err)
		}
		clients[w] = cl
	}
	histCap := cfg.Engine.HistoryWindows
	if histCap <= 0 {
		histCap = 8
	}
	c := &Coordinator{
		name:      cfg.Name,
		engCfg:    cfg.Engine,
		estimator: estimator,
		epsWindow: epsWindow,
		ring:      ring,
		clients:   clients,
		retries:   retries,
		maxBytes:  maxBytes,
		histCap:   histCap,
	}
	if cfg.Metrics != nil {
		c.routedClaims = cfg.Metrics.CounterVec("pptd_cluster_routed_claims_total",
			"Claim submissions routed to each worker.", "worker")
		c.routeErrors = cfg.Metrics.CounterVec("pptd_cluster_route_errors_total",
			"Claim submissions that failed because the owning worker was unreachable.", "worker")
		c.windowCloses = cfg.Metrics.Counter("pptd_cluster_window_closes_total",
			"Cluster-wide window closes completed (merged and committed).")
		c.closeRetries = cfg.Metrics.Counter("pptd_cluster_close_retries_total",
			"Per-worker close/commit RPC retries during cluster window closes.")
	}
	if err := c.bootSync(); err != nil {
		return nil, err
	}
	if cfg.WindowInterval > 0 {
		c.stop = make(chan struct{})
		c.wg.Add(1)
		go c.autoCloseLoop(cfg.WindowInterval)
	}
	return c, nil
}

// bootSync contacts every worker and adopts the cluster's window count.
// All workers must be reachable and agree on their effective position —
// recovering a truly torn cluster (workers whose positions diverge) is
// a deliberate non-goal of this iteration; the close protocol never
// creates one because a partial close parks the lagging workers behind
// the durable export cache, not behind a divergent window.
//
// A worker's effective position is the greater of its engine's window
// count and its cached close export's window: a worker killed between
// its durable export and the post-close snapshot recovers one window
// behind the export it can still serve, and the retried close repairs
// the advance. When any worker reports a pending export that was never
// committed, the previous coordinator died mid-round — the merged
// result was never applied — so bootSync re-drives the merge/commit
// from the workers' caches before the coordinator serves anything;
// skipping this would leave every later window estimating from stale
// carries while still passing the agreement check.
func (c *Coordinator) bootSync() error {
	ctx := context.Background()
	type boot struct {
		worker string
		info   crowd.StreamCampaignInfo
		status crowd.ClusterStatusReply
		err    error
	}
	workers := c.ring.Workers()
	boots := make([]boot, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			info, err := c.clients[w].StreamCampaign(ctx)
			var status crowd.ClusterStatusReply
			if err == nil {
				status, err = c.clients[w].ClusterStatus(ctx)
			}
			boots[i] = boot{worker: w, info: info, status: status, err: err}
		}(i, w)
	}
	wg.Wait()
	window := -1
	uncommitted := false
	var total int64
	for _, b := range boots {
		if b.err != nil {
			return fmt.Errorf("%w: %s at boot: %v", crowd.ErrWorkerUnavailable, b.worker, b.err)
		}
		if b.info.NumObjects != c.engCfg.NumObjects {
			return fmt.Errorf("%w: worker %s serves %d objects, coordinator configured for %d",
				ErrBadConfig, b.worker, b.info.NumObjects, c.engCfg.NumObjects)
		}
		est := b.info.Estimator
		if est == "" {
			est = stream.EstimatorCRH
		}
		if est != c.estimator {
			return fmt.Errorf("%w: worker %s runs estimator %q, coordinator configured for %q",
				ErrBadConfig, b.worker, est, c.estimator)
		}
		eff := b.status.Window
		if b.status.PendingWindow > eff {
			eff = b.status.PendingWindow
		}
		if window == -1 {
			window = eff
		} else if eff != window {
			return fmt.Errorf("%w: workers disagree on window count (%s at %d, %s at %d) — torn cluster",
				ErrBadConfig, boots[0].worker, window, b.worker, eff)
		}
		if b.status.PendingWindow > b.status.CommittedWindow {
			uncommitted = true
		}
		total += b.info.TotalClaims
	}
	c.window.Store(int64(window))
	c.totalClaims.Store(total)
	if uncommitted && window > 0 {
		if err := c.redriveClose(ctx, window); err != nil {
			return err
		}
	}
	return nil
}

// redriveClose finishes a close round a previous coordinator left
// mid-flight: every worker already closed the window (durably caching
// its export), but the merged carries were never committed everywhere
// and the result was never published. It re-collects the cached exports
// with a retried close — repairing any worker whose engine recovered
// un-advanced — and re-runs the merge/estimate/commit; workers that did
// commit the first time re-apply identical values (the commit is
// idempotent).
func (c *Coordinator) redriveClose(ctx context.Context, window int) error {
	c.windowMu.Lock()
	defer c.windowMu.Unlock()
	workers := c.ring.Workers()
	replies := make([]crowd.ClusterCloseReply, len(workers))
	if err := c.fanOut(workers, func(i int, w string) error {
		reply, err := c.closeWorker(ctx, w, window, true)
		replies[i] = reply
		return err
	}); err != nil {
		return fmt.Errorf("cluster: re-drive close of window %d: %w", window, err)
	}
	if _, err := c.mergeAndCommitLocked(ctx, window, replies); err != nil {
		return fmt.Errorf("cluster: re-drive close of window %d: %w", window, err)
	}
	return nil
}

// mergeConfig strips the per-node concerns from the shared engine
// configuration: the merge engine is ephemeral and in-memory, exists
// only for the duration of one estimation, and must never journal,
// spill, or report metrics of its own.
func mergeConfig(cfg stream.Config) stream.Config {
	cfg.Ledger = nil
	cfg.UserStore = nil
	cfg.Metrics = nil
	cfg.ClaimWAL = false
	cfg.MaxResidentUsers = 0
	cfg.ResidentBytes = 0
	return cfg
}

// autoCloseLoop closes windows on the configured interval until Close.
func (c *Coordinator) autoCloseLoop(interval time.Duration) {
	defer c.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			// An empty window means no traffic this tick — and the probe
			// round reached every worker to establish that, so it clears
			// any retained fault just like a successful close does.
			// Anything else — above all an unreachable worker, which
			// withholds the round's result — is retained for TickError;
			// the next tick re-runs the idempotent round.
			_, err := c.CloseWindow()
			if errors.Is(err, stream.ErrEmptyWindow) {
				err = nil
			}
			c.tickMu.Lock()
			c.tickErr = err // nil on success: a good tick clears the fault
			c.tickMu.Unlock()
		}
	}
}

// TickError returns the most recent unexpected error from a
// ticker-driven cluster close (nil when the last effective tick
// succeeded) — how a deployment notices a worker holding up closes.
func (c *Coordinator) TickError() error {
	c.tickMu.Lock()
	defer c.tickMu.Unlock()
	return c.tickErr
}

// Close stops the window ticker. Workers are not touched — they are
// independent processes with their own lifecycles.
func (c *Coordinator) Close() error {
	if c.stop != nil {
		c.stopOnce.Do(func() { close(c.stop) })
		c.wg.Wait()
	}
	return c.TickError()
}

// Ring exposes the coordinator's hash ring (for tests and diagnostics).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Window returns the number of cluster-wide closed windows.
func (c *Coordinator) Window() int { return int(c.window.Load()) }

// Campaign returns the cluster campaign metadata. Shards reports the
// worker count — the unit of horizontal scale here, as engine shards
// are on one node.
func (c *Coordinator) Campaign() crowd.StreamCampaignInfo {
	return crowd.StreamCampaignInfo{
		Name:             c.name,
		NumObjects:       c.engCfg.NumObjects,
		Lambda2:          c.engCfg.Lambda2,
		Estimator:        c.estimator,
		Shards:           len(c.ring.Workers()),
		Window:           c.Window(),
		TotalClaims:      c.totalClaims.Load(),
		EpsilonPerWindow: c.epsWindow,
		Delta:            c.engCfg.Delta,
		EpsilonBudget:    c.engCfg.EpsilonBudget,
	}
}

// Submit routes one claim batch to the worker owning the submitting
// user. The worker's answer — receipt or typed rejection (duplicate
// window, exhausted budget) — passes through unchanged except that the
// receipt's TotalClaims becomes the cluster-wide count. A transport
// failure maps to crowd.ErrWorkerUnavailable naming the worker; the
// claim was not ingested anywhere.
func (c *Coordinator) Submit(ctx context.Context, sub crowd.Submission) (crowd.StreamReceipt, error) {
	if sub.ClientID == "" {
		return crowd.StreamReceipt{}, fmt.Errorf("%w: empty clientId", crowd.ErrBadSubmission)
	}
	owner := c.ring.Owner(sub.ClientID)
	receipt, err := c.clients[owner].StreamSubmit(ctx, sub)
	if err != nil {
		var httpErr *crowd.HTTPError
		if !errors.As(err, &httpErr) {
			// No HTTP response at all: the worker is down or unreachable.
			if c.routeErrors != nil {
				c.routeErrors.With(owner).Inc()
			}
			return crowd.StreamReceipt{}, fmt.Errorf("%w: worker %s: %v", crowd.ErrWorkerUnavailable, owner, err)
		}
		return crowd.StreamReceipt{}, err
	}
	if c.routedClaims != nil {
		c.routedClaims.With(owner).Inc()
	}
	receipt.TotalClaims = c.totalClaims.Add(int64(receipt.Accepted))
	return receipt, nil
}

// CloseWindow runs one cluster-wide coordinated close (see the package
// comment for the protocol) and returns the merged window estimate. An
// all-empty cluster fails with stream.ErrEmptyWindow and advances
// nothing; an unreachable worker withholds the result and leaves the
// round retryable.
func (c *Coordinator) CloseWindow() (crowd.StreamWindowInfo, error) {
	c.windowMu.Lock()
	defer c.windowMu.Unlock()
	window := int(c.window.Load()) + 1
	workers := c.ring.Workers()
	ctx := context.Background()

	// Round 1: probe-close every worker. Workers holding live statistics
	// close and export; empty workers report Empty without closing.
	replies := make([]crowd.ClusterCloseReply, len(workers))
	err := c.fanOut(workers, func(i int, w string) error {
		reply, err := c.closeWorker(ctx, w, window, false)
		replies[i] = reply
		return err
	})
	if err != nil {
		return crowd.StreamWindowInfo{}, err
	}
	allEmpty := true
	for _, r := range replies {
		if !r.Empty {
			allEmpty = false
			break
		}
	}
	if allEmpty {
		return crowd.StreamWindowInfo{}, fmt.Errorf("%w: window %d empty on all %d workers",
			stream.ErrEmptyWindow, window, len(workers))
	}
	// Round 2: force-close the empty minority so every worker advances
	// together (their users still decay, exactly as on a single node).
	if err := c.fanOut(workers, func(i int, w string) error {
		if !replies[i].Empty {
			return nil
		}
		reply, err := c.closeWorker(ctx, w, window, true)
		replies[i] = reply
		return err
	}); err != nil {
		return crowd.StreamWindowInfo{}, err
	}

	return c.mergeAndCommitLocked(ctx, window, replies)
}

// mergeAndCommitLocked is the second half of a coordinated close —
// merge the disjoint per-worker exports, run the one true estimation,
// commit the merged carries back, then (and only then) advance and
// publish. Shared by CloseWindow and the boot-time re-drive. Callers
// must hold windowMu.
func (c *Coordinator) mergeAndCommitLocked(ctx context.Context, window int, replies []crowd.ClusterCloseReply) (crowd.StreamWindowInfo, error) {
	workers := c.ring.Workers()
	states := make([]*stream.EngineState, len(replies))
	for i, r := range replies {
		states[i] = r.State
	}
	merged, err := stream.MergeStates(states)
	if err != nil {
		return crowd.StreamWindowInfo{}, fmt.Errorf("cluster: merge window %d: %w", window, err)
	}
	eng, err := stream.New(mergeConfig(c.engCfg))
	if err != nil {
		return crowd.StreamWindowInfo{}, fmt.Errorf("cluster: merge engine: %w", err)
	}
	defer func() {
		_ = eng.Close()
	}()
	if err := eng.Restore(merged); err != nil {
		return crowd.StreamWindowInfo{}, fmt.Errorf("cluster: restore merged state: %w", err)
	}
	res, err := eng.CloseWindow()
	if err != nil {
		return crowd.StreamWindowInfo{}, fmt.Errorf("cluster: estimate window %d: %w", window, err)
	}
	carries, err := eng.ExportCarry()
	if err != nil {
		return crowd.StreamWindowInfo{}, fmt.Errorf("cluster: export carries: %w", err)
	}

	// Commit the merged carries back to each user's owning worker. Every
	// worker gets a commit — even with no carries to receive — because
	// commit also runs the eviction the cluster close deferred.
	byWorker := make(map[string][]stream.UserCarry, len(workers))
	for _, carry := range carries {
		owner := c.ring.Owner(carry.ID)
		byWorker[owner] = append(byWorker[owner], carry)
	}
	if err := c.fanOut(workers, func(i int, w string) error {
		return c.commitWorker(ctx, w, window, byWorker[w])
	}); err != nil {
		// The result is withheld, not partially published: the window
		// does not advance, and the next close re-runs the idempotent
		// round (workers answer from their export caches, the merge
		// reproduces the same result, commits re-apply the same values).
		return crowd.StreamWindowInfo{}, err
	}

	c.window.Store(int64(window))
	if c.windowCloses != nil {
		c.windowCloses.Inc()
	}
	info := crowd.WindowInfo(res)
	c.histMu.Lock()
	c.history = append(c.history, info)
	if len(c.history) > c.histCap {
		c.history = c.history[len(c.history)-c.histCap:]
	}
	c.histMu.Unlock()
	return info, nil
}

// closeWorker invokes one worker's close RPC with retries.
func (c *Coordinator) closeWorker(ctx context.Context, worker string, window int, force bool) (crowd.ClusterCloseReply, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 && c.closeRetries != nil {
			c.closeRetries.Inc()
		}
		reply, err := c.clients[worker].ClusterClose(ctx, crowd.ClusterCloseRequest{Window: window, Force: force})
		if err == nil {
			if !reply.Empty && reply.State == nil {
				return crowd.ClusterCloseReply{}, fmt.Errorf("cluster: worker %s returned neither state nor empty for window %d",
					worker, window)
			}
			return reply, nil
		}
		var httpErr *crowd.HTTPError
		if errors.As(err, &httpErr) {
			// The worker answered: retrying the same request will not
			// change its mind. Surface its typed error as-is.
			return crowd.ClusterCloseReply{}, err
		}
		lastErr = err
	}
	return crowd.ClusterCloseReply{}, fmt.Errorf("%w: %s closing window %d: %v",
		crowd.ErrWorkerUnavailable, worker, window, lastErr)
}

// commitWorker invokes one worker's commit RPC with retries.
func (c *Coordinator) commitWorker(ctx context.Context, worker string, window int, carries []stream.UserCarry) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 && c.closeRetries != nil {
			c.closeRetries.Inc()
		}
		_, err := c.clients[worker].ClusterCommit(ctx, crowd.ClusterCommitRequest{Window: window, Carries: carries})
		if err == nil {
			return nil
		}
		var httpErr *crowd.HTTPError
		if errors.As(err, &httpErr) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("%w: %s committing window %d: %v",
		crowd.ErrWorkerUnavailable, worker, window, lastErr)
}

// fanOut runs f once per worker concurrently and joins the failures.
func (c *Coordinator) fanOut(workers []string, f func(i int, worker string) error) error {
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			errs[i] = f(i, w)
		}(i, w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Truths returns the latest merged window estimate, or crowd.ErrNotReady
// before the first cluster-wide close.
func (c *Coordinator) Truths() (crowd.StreamWindowInfo, error) {
	c.histMu.RLock()
	defer c.histMu.RUnlock()
	if len(c.history) == 0 {
		return crowd.StreamWindowInfo{}, crowd.ErrNotReady
	}
	return c.history[len(c.history)-1], nil
}

// TruthsAt returns one retained merged window (1-based; 0 = latest),
// mirroring the single-node history contract.
func (c *Coordinator) TruthsAt(window int) (crowd.StreamWindowInfo, error) {
	if window == 0 {
		return c.Truths()
	}
	c.histMu.RLock()
	defer c.histMu.RUnlock()
	if len(c.history) == 0 {
		return crowd.StreamWindowInfo{}, crowd.ErrNotReady
	}
	for _, info := range c.history {
		if info.Window == window {
			return info, nil
		}
	}
	return crowd.StreamWindowInfo{}, fmt.Errorf("%w: window %d (retaining up to %d recent windows)",
		crowd.ErrUnknownWindow, window, c.histCap)
}

// Stats returns the coordinator's headline counters.
func (c *Coordinator) Stats() crowd.StreamStatsInfo {
	info := crowd.StreamStatsInfo{
		Name:           c.name,
		Estimator:      c.estimator,
		Window:         c.Window(),
		TotalClaims:    c.totalClaims.Load(),
		HistoryWindows: c.histCap,
	}
	c.histMu.RLock()
	if len(c.history) > 0 {
		info.HistoryOldest = c.history[0].Window
	}
	c.histMu.RUnlock()
	return info
}

// Handler returns an http.Handler serving the cluster front door.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

// Register mounts the coordinator's routes — the standard streaming
// wire paths, speaking the exact contract a single node does — on a
// shared mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc(crowd.PathStreamCampaign, crowd.EchoRequestID(c.handleCampaign))
	mux.HandleFunc(crowd.PathStreamClaims, crowd.EchoRequestID(c.handleClaims))
	mux.HandleFunc(crowd.PathStreamTruths, crowd.EchoRequestID(c.handleTruths))
	mux.HandleFunc(crowd.PathStreamWindow, crowd.EchoRequestID(c.handleWindow))
	mux.HandleFunc(crowd.PathStreamStats, crowd.EchoRequestID(c.handleStats))
}

func (c *Coordinator) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		crowd.WriteError(w, http.StatusMethodNotAllowed, crowd.CodeMethodNotAllowed, "GET only")
		return
	}
	crowd.WriteJSON(w, http.StatusOK, c.Campaign())
}

func (c *Coordinator) handleClaims(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		crowd.WriteError(w, http.StatusMethodNotAllowed, crowd.CodeMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, c.maxBytes)
	var sub crowd.Submission
	if crowd.IsClaimFrameRequest(r) {
		// The coordinator accepts the binary frame like a single node
		// does, then routes the decoded batch to the owning worker over
		// its regular client (the hot zero-allocation path lives on the
		// workers; the coordinator is a proxy either way).
		f := crowd.GetClaimFrame()
		defer crowd.PutClaimFrame(f)
		if err := crowd.DecodeClaimFrame(r.Body, f); err != nil {
			crowd.WriteDecodeError(w, "decode claim frame", err)
			return
		}
		sub.ClientID = string(f.ClientID)
		sub.Claims = make([]crowd.Claim, len(f.Claims))
		for i, cl := range f.Claims {
			sub.Claims[i] = crowd.Claim{Object: cl.Object, Value: cl.Value}
		}
	} else if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		crowd.WriteDecodeError(w, "decode submission", err)
		return
	}
	receipt, err := c.Submit(r.Context(), sub)
	if err != nil {
		// A worker's own envelope (duplicate window, exhausted budget,
		// bad claim) passes through with its original status and code.
		crowd.WriteWireError(w, err)
		return
	}
	crowd.WriteJSON(w, http.StatusOK, receipt)
}

func (c *Coordinator) handleTruths(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		crowd.WriteError(w, http.StatusMethodNotAllowed, crowd.CodeMethodNotAllowed, "GET only")
		return
	}
	window := 0
	if raw := r.URL.Query().Get("window"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			crowd.WriteError(w, http.StatusBadRequest, crowd.CodeBadRequest,
				fmt.Sprintf("bad window parameter %q: want a non-negative integer", raw))
			return
		}
		window = n
	}
	info, err := c.TruthsAt(window)
	if err != nil {
		crowd.WriteWireError(w, err)
		return
	}
	crowd.WriteJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleWindow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		crowd.WriteError(w, http.StatusMethodNotAllowed, crowd.CodeMethodNotAllowed, "POST only")
		return
	}
	info, err := c.CloseWindow()
	if err != nil {
		crowd.WriteWireError(w, err)
		return
	}
	crowd.WriteJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		crowd.WriteError(w, http.StatusMethodNotAllowed, crowd.CodeMethodNotAllowed, "GET only")
		return
	}
	crowd.WriteJSON(w, http.StatusOK, c.Stats())
}
