package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pptd/internal/obs"
	"pptd/internal/streamstore"
)

// Segment shipping: a background Shipper replicates a worker's durable
// state directory — sealed journal segments, the active segment's
// durable prefix, the user spill file, retained results, and the
// snapshot — to a Sink. A sink can be a local archive directory
// (DirSink: point-in-time restore) or a follower node over HTTP
// (HTTPSink + Follower: warm standby, read replica). Restoring is just
// opening a streamstore on the replica directory: the shipped files ARE
// the state directory.
//
// Correctness rests on two properties of the store's files. Sealed
// segments are immutable, so shipping one at its final size is final —
// it never needs to ship again. Everything else is either
// append-only with per-record CRCs (the active segment, whose shipped
// prefix is always a valid journal) or atomically replaced (snapshot,
// results, spill after compaction), so a whole-file copy is always
// internally consistent. The shipper Puts files in Shippable's listing
// order — segments before snapshot — so the sink never holds a snapshot
// whose journal suffix it is missing; a crash mid-pass leaves the sink
// at worst one consistent step behind.

// Sink is a shipping destination.
type Sink interface {
	// Have returns the sink's current files by base name and size.
	Have() (map[string]int64, error)
	// Put stores one file under its base name, replacing any previous
	// content atomically.
	Put(name string, data []byte) error
}

// DirSink ships into a local directory — an archive for point-in-time
// restore, or a directory a standby node will recover from.
type DirSink struct {
	dir string
}

// NewDirSink creates the directory if needed and returns a sink over it.
func NewDirSink(dir string) (*DirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: create sink dir: %w", err)
	}
	return &DirSink{dir: dir}, nil
}

// Dir returns the sink's directory.
func (d *DirSink) Dir() string { return d.dir }

// Have implements Sink.
func (d *DirSink) Have() (map[string]int64, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	have := make(map[string]int64, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue // racing a concurrent replace; next pass catches up
		}
		if info.Mode().IsRegular() {
			have[e.Name()] = info.Size()
		}
	}
	return have, nil
}

// Put implements Sink: write-temp-then-rename, so a reader (or a
// restore racing the shipper) never sees a half-written file.
func (d *DirSink) Put(name string, data []byte) error {
	if !streamstore.ValidShippableName(name) {
		return fmt.Errorf("cluster: refusing to ship %q: not a shippable name", name)
	}
	tmp, err := os.CreateTemp(d.dir, ".ship-*")
	if err != nil {
		return err
	}
	defer func() {
		_ = os.Remove(tmp.Name()) // no-op after the rename succeeds
	}()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(d.dir, name))
}

// Shipper replicates one store's durable state to a sink, either on
// demand (SyncOnce) or continuously on an interval (Start/Close). The
// shipper only ever adds or updates files at the sink — it never
// deletes, so an archive accumulates every point-in-time state the
// source passed through (segments the source compacted away just stop
// updating).
type Shipper struct {
	store    *streamstore.Store
	sink     Sink
	interval time.Duration

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu      sync.Mutex
	lastErr error

	shippedFiles *obs.Counter
	shippedBytes *obs.Counter
	syncErrors   *obs.Counter
}

// NewShipper returns a shipper from store to sink. interval is the
// cadence for Start (SyncOnce works regardless); metrics may be nil.
func NewShipper(store *streamstore.Store, sink Sink, interval time.Duration, metrics *obs.Registry) (*Shipper, error) {
	if store == nil || sink == nil {
		return nil, fmt.Errorf("cluster: shipper needs a store and a sink")
	}
	if interval < 0 {
		return nil, fmt.Errorf("cluster: negative ship interval %v", interval)
	}
	s := &Shipper{store: store, sink: sink, interval: interval, stop: make(chan struct{})}
	if metrics != nil {
		s.shippedFiles = metrics.Counter("pptd_cluster_shipped_files_total",
			"Files shipped (created or updated) at the replication sink.")
		s.shippedBytes = metrics.Counter("pptd_cluster_shipped_bytes_total",
			"Bytes shipped to the replication sink.")
		s.syncErrors = metrics.Counter("pptd_cluster_ship_errors_total",
			"Shipping passes that failed (retried on the next interval).")
	}
	return s, nil
}

// SyncOnce runs one shipping pass: list the sink, list the store's
// shippable files, and Put — in listing order — every file the sink is
// missing or that changed. Sealed segments already present at their
// final size are skipped for good; mutable files (active segment,
// spill, results) re-ship whenever their durable size moved; the
// snapshot and the cluster-close record re-ship on every pass even at
// an unchanged size, because both are atomically rewritten (same size,
// different state, is possible) and the snapshot's listing position
// (last) makes it the pass's commit point.
func (s *Shipper) SyncOnce() error {
	err := s.syncOnce()
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
	if err != nil && s.syncErrors != nil {
		s.syncErrors.Inc()
	}
	return err
}

func (s *Shipper) syncOnce() error {
	have, err := s.sink.Have()
	if err != nil {
		return fmt.Errorf("cluster: list sink: %w", err)
	}
	files, err := s.store.Shippable()
	if err != nil {
		return fmt.Errorf("cluster: list shippable state: %w", err)
	}
	for _, f := range files {
		// Skip whatever the sink already holds at the listed size: final
		// for sealed segments (immutable), and "durable size unchanged"
		// for the other files — the active segment and the spill only
		// ever grow (or shrink on compaction), so an equal size means an
		// identical durable prefix. The snapshot and the cluster-close
		// record are the exceptions: both are atomically rewritten and
		// can change state without changing size, and the snapshot is the
		// pass's commit point — they always re-ship.
		if size, ok := have[f.Name]; ok && size == f.Size &&
			f.Name != streamstore.SnapshotFileName && f.Name != streamstore.ClusterCloseFileName {
			continue
		}
		data, err := s.store.ReadShippable(f.Name, f.Size)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // compacted away between listing and read
			}
			return fmt.Errorf("cluster: read %s: %w", f.Name, err)
		}
		if err := s.sink.Put(f.Name, data); err != nil {
			return fmt.Errorf("cluster: ship %s: %w", f.Name, err)
		}
		if s.shippedFiles != nil {
			s.shippedFiles.Inc()
			s.shippedBytes.Add(int64(len(data)))
		}
	}
	return nil
}

// LastError returns the outcome of the most recent shipping pass (nil
// when it succeeded) — how a deployment notices its standby going stale.
func (s *Shipper) LastError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Start ships continuously on the configured interval until Close. A
// failed pass is retried at the next tick.
func (s *Shipper) Start() {
	if s.interval <= 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				_ = s.SyncOnce()
			}
		}
	}()
}

// Close stops the background loop and runs one final pass, so a
// graceful shutdown leaves the sink current.
func (s *Shipper) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return s.SyncOnce()
}
