package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"pptd/internal/crowd"
	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// equivTol is the tolerance for cluster-vs-single-node equivalence.
// The merge concatenates per-worker statistics instead of interleaving
// them in arrival order, so floating-point summation order may differ;
// everything else is bitwise identical.
const equivTol = 1e-9

// estimatorsUnderTest mirrors the stream package's CI matrix hook: with
// PPTD_STREAM_ESTIMATOR set, only that estimator runs.
func estimatorsUnderTest(t *testing.T) []string {
	t.Helper()
	if env := os.Getenv("PPTD_STREAM_ESTIMATOR"); env != "" {
		if !stream.KnownEstimator(env) {
			t.Fatalf("PPTD_STREAM_ESTIMATOR = %q: want one of %v", env, stream.EstimatorNames)
		}
		return []string{env}
	}
	return stream.EstimatorNames
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return ln
}

// testWorker is one worker node with a real HTTP listener on a stable
// address, a durable store, and a DirSink archive it ships segments to.
type testWorker struct {
	addr    string
	url     string
	dir     string
	shipDir string

	worker *Worker
	store  *streamstore.Store
	srv    *http.Server
}

// startWorker boots a durable worker with segment shipping to a local
// archive. The shipping interval is effectively manual (SyncOnce).
func startWorker(t *testing.T, cfg stream.Config, name string) *testWorker {
	t.Helper()
	tw := &testWorker{dir: t.TempDir(), shipDir: t.TempDir()}
	store, err := streamstore.Open(tw.dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	sink, err := NewDirSink(tw.shipDir)
	if err != nil {
		t.Fatalf("dir sink: %v", err)
	}
	w, err := NewWorker(WorkerConfig{
		Name:         name,
		Engine:       cfg,
		Persistence:  store,
		ShipTo:       sink,
		ShipInterval: time.Hour, // tests ship explicitly via SyncOnce
	})
	if err != nil {
		t.Fatalf("start worker: %v", err)
	}
	tw.worker, tw.store = w, store
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	tw.addr = ln.Addr().String()
	tw.url = "http://" + tw.addr
	tw.serve(t, ln)
	return tw
}

func (tw *testWorker) serve(t *testing.T, ln net.Listener) {
	t.Helper()
	srv := &http.Server{Handler: tw.worker.Handler()}
	tw.srv = srv
	go func() {
		_ = srv.Serve(ln)
	}()
}

// relisten rebinds the worker's handler on its original address after
// stopListening, simulating the node coming back.
func (tw *testWorker) relisten(t *testing.T) {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ { // the old listener's port can take a moment to free
		ln, err = net.Listen("tcp", tw.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("relisten %s: %v", tw.addr, err)
	}
	tw.serve(t, ln)
}

// stopListening closes the HTTP listener, making the worker unreachable
// while its engine and store stay intact (a network partition).
func (tw *testWorker) stopListening(t *testing.T) {
	t.Helper()
	if err := tw.srv.Close(); err != nil {
		t.Fatalf("stop listener: %v", err)
	}
}

// closeAll gracefully shuts down the worker and its store.
func (tw *testWorker) closeAll(t *testing.T) {
	t.Helper()
	_ = tw.srv.Close()
	if err := tw.worker.Close(); err != nil {
		t.Errorf("close worker: %v", err)
	}
	if err := tw.store.Close(); err != nil {
		t.Errorf("close store: %v", err)
	}
}

// claimsFor generates the deterministic claim set of one user in one
// window: user u reports on roughly half the objects with values that
// depend on (user, object, window).
func claimsFor(u, window, numObjects int) []stream.Claim {
	var claims []stream.Claim
	for o := 0; o < numObjects; o++ {
		if (u+o)%2 == 0 {
			claims = append(claims, stream.Claim{
				Object: o,
				Value:  10 * math.Sin(float64(u*31+o*7+window*13)),
			})
		}
	}
	return claims
}

func userID(u int) string { return fmt.Sprintf("user-%03d", u) }

// submits reports whether user u participates in the given window.
func submits(u, window int) bool { return (u+window)%5 != 0 }

func toSubmission(id string, claims []stream.Claim) crowd.Submission {
	cc := make([]crowd.Claim, len(claims))
	for i, c := range claims {
		cc[i] = crowd.Claim{Object: c.Object, Value: c.Value}
	}
	return crowd.Submission{ClientID: id, Claims: cc}
}

// requireEquivalent asserts the cluster's merged window result matches
// the single-node reference within equivTol.
func requireEquivalent(t *testing.T, window int, ref, got crowd.StreamWindowInfo) {
	t.Helper()
	if got.Window != ref.Window {
		t.Fatalf("window %d: cluster closed window %d, single node %d", window, got.Window, ref.Window)
	}
	if len(got.Truths) != len(ref.Truths) {
		t.Fatalf("window %d: %d truths, want %d", window, len(got.Truths), len(ref.Truths))
	}
	for o := range ref.Truths {
		if got.Covered[o] != ref.Covered[o] {
			t.Fatalf("window %d object %d: covered = %v, want %v", window, o, got.Covered[o], ref.Covered[o])
		}
		if diff := math.Abs(got.Truths[o] - ref.Truths[o]); diff > equivTol {
			t.Fatalf("window %d object %d: truth %v vs single-node %v (diff %g)",
				window, o, got.Truths[o], ref.Truths[o], diff)
		}
	}
	if len(got.Weights) != len(ref.Weights) {
		t.Fatalf("window %d: %d weights, want %d", window, len(got.Weights), len(ref.Weights))
	}
	for id, w := range ref.Weights {
		gw, ok := got.Weights[id]
		if !ok {
			t.Fatalf("window %d: missing weight for %s", window, id)
		}
		if diff := math.Abs(gw - w); diff > equivTol {
			t.Fatalf("window %d user %s: weight %v vs single-node %v (diff %g)", window, id, gw, w, diff)
		}
	}
	if got.ActiveUsers != ref.ActiveUsers || got.WindowClaims != ref.WindowClaims || got.TotalClaims != ref.TotalClaims {
		t.Fatalf("window %d: active/claims = %d/%d/%d, want %d/%d/%d", window,
			got.ActiveUsers, got.WindowClaims, got.TotalClaims,
			ref.ActiveUsers, ref.WindowClaims, ref.TotalClaims)
	}
	if (got.Privacy == nil) != (ref.Privacy == nil) {
		t.Fatalf("window %d: privacy report presence = %v, want %v", window, got.Privacy != nil, ref.Privacy != nil)
	}
	if ref.Privacy != nil {
		if got.Privacy.TrackedUsers != ref.Privacy.TrackedUsers ||
			got.Privacy.ExhaustedUsers != ref.Privacy.ExhaustedUsers ||
			got.Privacy.MaxWindows != ref.Privacy.MaxWindows {
			t.Fatalf("window %d: privacy %+v, want %+v", window, got.Privacy, ref.Privacy)
		}
		if math.Abs(got.Privacy.MaxCumulative-ref.Privacy.MaxCumulative) > equivTol {
			t.Fatalf("window %d: MaxCumulative %v, want %v", window, got.Privacy.MaxCumulative, ref.Privacy.MaxCumulative)
		}
	}
}

func baseConfig(estimator string) stream.Config {
	return stream.Config{
		NumObjects: 5,
		Estimator:  estimator,
		Decay:      0.8,
		Lambda1:    0.5,
		Lambda2:    1.2,
		Delta:      1e-5,
	}
}

// TestClusterEquivalence is the core property of the whole subsystem:
// per estimator, a 3-worker cluster publishes — window after window —
// exactly the estimates one single-node engine produces over the same
// claims, including after one worker is killed and recovered from its
// shipped segment archive.
func TestClusterEquivalence(t *testing.T) {
	for _, est := range estimatorsUnderTest(t) {
		t.Run(est, func(t *testing.T) {
			const (
				numUsers   = 24
				numWindows = 6
				killAfter  = 3 // recover a worker from shipped segments after this window
			)
			cfg := baseConfig(est)

			// Single-node reference over the identical claim stream.
			refCfg := cfg
			ref, err := stream.New(refCfg)
			if err != nil {
				t.Fatalf("reference engine: %v", err)
			}
			defer func() {
				_ = ref.Close()
			}()

			workerCfg := cfg
			workerCfg.ClaimWAL = true // claims must be as durable as charges for kill-and-recover
			workers := make([]*testWorker, 3)
			for i := range workers {
				workers[i] = startWorker(t, workerCfg, fmt.Sprintf("w%d", i))
			}
			urls := make([]string, len(workers))
			byURL := make(map[string]*testWorker, len(workers))
			for i, w := range workers {
				urls[i] = w.url
				byURL[w.url] = w
			}
			// A dedicated transport lets the test drop pooled connections
			// to the crashed worker after its restart; without that, the
			// first post-recovery request can land on a stale keep-alive
			// socket and surface a transport error.
			tr := &http.Transport{}
			defer tr.CloseIdleConnections()
			coord, err := NewCoordinator(Config{
				Name: "equiv", Engine: cfg, Workers: urls,
				HTTPClient: &http.Client{Transport: tr},
			})
			if err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			defer func() {
				_ = coord.Close()
			}()

			ctx := context.Background()
			recovered := false
			for window := 1; window <= numWindows; window++ {
				for u := 0; u < numUsers; u++ {
					if !submits(u, window) {
						continue
					}
					id := userID(u)
					claims := claimsFor(u, window, cfg.NumObjects)
					if _, _, err := ref.Ingest(id, claims); err != nil {
						t.Fatalf("window %d: reference ingest %s: %v", window, id, err)
					}
					if _, err := coord.Submit(ctx, toSubmission(id, claims)); err != nil {
						t.Fatalf("window %d: cluster submit %s: %v", window, id, err)
					}
				}
				refRes, err := ref.CloseWindow()
				if err != nil {
					t.Fatalf("window %d: reference close: %v", window, err)
				}
				got, err := coord.CloseWindow()
				if err != nil {
					t.Fatalf("window %d: cluster close: %v", window, err)
				}
				requireEquivalent(t, window, crowd.WindowInfo(refRes), got)

				if window == killAfter && !recovered {
					recovered = true
					// Ship every worker's durable state, then crash one
					// (listener down, no graceful close — its unshipped
					// in-memory state is lost, but the post-commit snapshot
					// was already shipped) and recover it from the archive
					// on the same address.
					victim := byURL[coord.Ring().Owner(userID(0))]
					for _, w := range workers {
						if err := w.worker.Shipper().SyncOnce(); err != nil {
							t.Fatalf("ship: %v", err)
						}
					}
					victim.stopListening(t)
					// The crashed worker's engine and store are deliberately
					// leaked (a graceful close would ship again); recovery
					// must work from the archive alone.
					store, err := streamstore.Open(victim.shipDir)
					if err != nil {
						t.Fatalf("open shipped archive: %v", err)
					}
					recoveredWorker, err := NewWorker(WorkerConfig{
						Name:        "recovered",
						Engine:      workerCfg,
						Persistence: store,
					})
					if err != nil {
						t.Fatalf("recover worker from shipped archive: %v", err)
					}
					t.Cleanup(func() {
						_ = recoveredWorker.Close()
						_ = store.Close()
					})
					if got, want := recoveredWorker.Server().Engine().Window(), window; got != want {
						t.Fatalf("recovered worker at %d closed windows, want %d", got, want)
					}
					victim.worker = recoveredWorker
					victim.relisten(t)
					tr.CloseIdleConnections()
				}
			}

			for _, w := range workers {
				w.closeAll(t)
			}
		})
	}
}

// TestClusterExhaustedUserSurvivesRecovery: a user who exhausted their
// privacy budget keeps being rejected by the cluster after the worker
// holding their ledger is crashed and recovered from shipped segments —
// and routing stability guarantees the recovered worker is still the
// one consulted.
func TestClusterExhaustedUserSurvivesRecovery(t *testing.T) {
	cfg := baseConfig(stream.EstimatorCRH)
	probe, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("probe engine: %v", err)
	}
	epsWindow := probe.EpsilonPerWindow()
	_ = probe.Close()
	if epsWindow <= 0 {
		t.Fatalf("accounting not enabled (epsWindow = %v)", epsWindow)
	}
	cfg.EpsilonBudget = 2.5 * epsWindow // affords exactly two windows

	workerCfg := cfg
	workerCfg.ClaimWAL = true
	workers := make([]*testWorker, 2)
	for i := range workers {
		workers[i] = startWorker(t, workerCfg, fmt.Sprintf("w%d", i))
	}
	urls := []string{workers[0].url, workers[1].url}
	coord, err := NewCoordinator(Config{Name: "budget", Engine: cfg, Workers: urls})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer func() {
		_ = coord.Close()
	}()

	ctx := context.Background()
	const alice = "alice"
	filler := "bob"
	if coord.Ring().Owner(alice) == coord.Ring().Owner(filler) {
		// Keep the filler on the other worker so the victim crash only
		// affects alice's shard.
		for i := 0; ; i++ {
			filler = fmt.Sprintf("bob-%d", i)
			if coord.Ring().Owner(filler) != coord.Ring().Owner(alice) {
				break
			}
		}
	}
	claims := []stream.Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}
	for window := 1; window <= 2; window++ {
		if _, err := coord.Submit(ctx, toSubmission(alice, claims)); err != nil {
			t.Fatalf("window %d: alice: %v", window, err)
		}
		// The filler spends only one window of budget, so it stays under
		// the cap while alice burns through hers.
		if window == 1 {
			if _, err := coord.Submit(ctx, toSubmission(filler, claims)); err != nil {
				t.Fatalf("window %d: filler: %v", window, err)
			}
		}
		if _, err := coord.CloseWindow(); err != nil {
			t.Fatalf("window %d: close: %v", window, err)
		}
	}
	_, err = coord.Submit(ctx, toSubmission(alice, claims))
	if !errors.Is(err, stream.ErrBudgetExhausted) {
		t.Fatalf("third window submit: err = %v, want ErrBudgetExhausted", err)
	}

	// Crash alice's worker and recover it from the shipped archive.
	var victim *testWorker
	owner := coord.Ring().Owner(alice)
	for _, w := range workers {
		if w.url == owner {
			victim = w
		}
	}
	if err := victim.worker.Shipper().SyncOnce(); err != nil {
		t.Fatalf("ship: %v", err)
	}
	victim.stopListening(t)
	store, err := streamstore.Open(victim.shipDir)
	if err != nil {
		t.Fatalf("open shipped archive: %v", err)
	}
	recoveredWorker, err := NewWorker(WorkerConfig{Name: "recovered", Engine: workerCfg, Persistence: store})
	if err != nil {
		t.Fatalf("recover worker: %v", err)
	}
	t.Cleanup(func() {
		_ = recoveredWorker.Close()
		_ = store.Close()
	})
	victim.worker = recoveredWorker
	victim.relisten(t)

	// The first request after the restart may land on a stale pooled
	// connection to the dead listener (surfacing as worker_unavailable);
	// that is the documented retry contract, so retry briefly.
	for attempt := 0; ; attempt++ {
		_, err = coord.Submit(ctx, toSubmission(alice, claims))
		if errors.Is(err, stream.ErrBudgetExhausted) {
			break
		}
		if !errors.Is(err, crowd.ErrWorkerUnavailable) || attempt >= 50 {
			t.Fatalf("submit after recovery: err = %v, want ErrBudgetExhausted", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The filler, who still has budget, keeps working through the same
	// cluster.
	if _, err := coord.Submit(ctx, toSubmission(filler, claims)); err != nil {
		t.Fatalf("filler after recovery: %v", err)
	}
}

// TestClusterEmptyWindow: a cluster-wide close with no claims anywhere
// fails with ErrEmptyWindow and advances nothing — exactly the
// single-node contract.
func TestClusterEmptyWindow(t *testing.T) {
	cfg := stream.Config{NumObjects: 3}
	workers := []*testWorker{startWorker(t, cfg, "w0"), startWorker(t, cfg, "w1")}
	defer func() {
		for _, w := range workers {
			w.closeAll(t)
		}
	}()
	coord, err := NewCoordinator(Config{Name: "empty", Engine: cfg, Workers: []string{workers[0].url, workers[1].url}})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer func() {
		_ = coord.Close()
	}()
	if _, err := coord.CloseWindow(); !errors.Is(err, stream.ErrEmptyWindow) {
		t.Fatalf("empty close: err = %v, want ErrEmptyWindow", err)
	}
	if coord.Window() != 0 {
		t.Fatalf("window advanced to %d on an empty close", coord.Window())
	}
	for _, w := range workers {
		if got := w.worker.Server().Engine().Window(); got != 0 {
			t.Fatalf("worker advanced to %d closed windows on an empty cluster close", got)
		}
	}

	// One claim on one worker is enough: the cluster closes, and the
	// worker that stayed empty advances with it.
	if _, err := coord.Submit(context.Background(), crowd.Submission{
		ClientID: "solo", Claims: []crowd.Claim{{Object: 0, Value: 1}},
	}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	info, err := coord.CloseWindow()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if info.Window != 1 || coord.Window() != 1 {
		t.Fatalf("closed window = %d (coordinator at %d), want 1", info.Window, coord.Window())
	}
	for _, w := range workers {
		if got := w.worker.Server().Engine().Window(); got != 1 {
			t.Fatalf("worker at %d closed windows after forced close, want 1", got)
		}
	}
}
