package core

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/truth"
)

func mustCRH(t *testing.T) truth.Method {
	t.Helper()
	m, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewPipelineValidation(t *testing.T) {
	m := mustMechanism(t, 1)
	if _, err := NewPipeline(nil, mustCRH(t)); !errors.Is(err, ErrBadParam) {
		t.Error("nil mechanism accepted")
	}
	if _, err := NewPipeline(m, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil method accepted")
	}
}

func TestPipelineRunProducesBothResults(t *testing.T) {
	rng := randx.New(60)
	ds := fullDataset(t, rng, 50, 20)
	p, err := NewPipeline(mustMechanism(t, 2), mustCRH(t))
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(ds, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if out.Original == nil || out.Private == nil || out.Noise == nil {
		t.Fatal("incomplete outcome")
	}
	if len(out.Original.Truths) != 20 || len(out.Private.Truths) != 20 {
		t.Fatal("wrong truth vector lengths")
	}
	if out.UtilityMAE < 0 || math.IsNaN(out.UtilityMAE) {
		t.Fatalf("UtilityMAE = %v", out.UtilityMAE)
	}
	if out.OriginalDuration <= 0 || out.PrivateDuration <= 0 {
		t.Fatal("durations not recorded")
	}
}

func TestPipelineNilArgs(t *testing.T) {
	rng := randx.New(61)
	ds := fullDataset(t, rng, 5, 5)
	p, err := NewPipeline(mustMechanism(t, 1), mustCRH(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil, rng); !errors.Is(err, ErrBadParam) {
		t.Error("nil dataset accepted")
	}
	if _, err := p.Run(ds, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil rng accepted")
	}
}

func TestPipelineUtilityLossWellBelowNoise(t *testing.T) {
	// The paper's headline claim: the aggregate on perturbed data stays
	// close to the aggregate on original data even when per-reading noise
	// is large, because weighted aggregation damps noisy users. With
	// lambda2 = 0.5 the expected |noise| is 1.0; the utility MAE should
	// be far below that.
	rng := randx.New(62)
	ds := fullDataset(t, rng, 150, 30)
	mech := mustMechanism(t, 0.5)
	p, err := NewPipeline(mech, mustCRH(t))
	if err != nil {
		t.Fatal(err)
	}
	var maeSum, noiseSum float64
	const trials = 5
	for i := 0; i < trials; i++ {
		out, err := p.Run(ds, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		maeSum += out.UtilityMAE
		noiseSum += out.Noise.MeanAbsNoise
	}
	mae := maeSum / trials
	noise := noiseSum / trials
	if mae > noise/3 {
		t.Fatalf("utility MAE %v not well below injected noise %v", mae, noise)
	}
}

func TestPipelineWeightedBeatsMeanUnderPerturbation(t *testing.T) {
	// Under the same perturbed data, CRH should deviate from its
	// unperturbed aggregate less than plain averaging does — the reason
	// the mechanism pairs perturbation with truth discovery.
	rng := randx.New(63)
	ds := fullDataset(t, rng, 150, 30)
	mech := mustMechanism(t, 0.5)

	crhPipe, err := NewPipeline(mech, mustCRH(t))
	if err != nil {
		t.Fatal(err)
	}
	meanPipe, err := NewPipeline(mech, truth.Mean{})
	if err != nil {
		t.Fatal(err)
	}

	var crhMAE, meanMAE float64
	const trials = 8
	for i := 0; i < trials; i++ {
		seed := randx.New(uint64(1000 + i))
		outCRH, err := crhPipe.Run(ds, seed)
		if err != nil {
			t.Fatal(err)
		}
		outMean, err := meanPipe.Run(ds, randx.New(uint64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		crhMAE += outCRH.UtilityMAE
		meanMAE += outMean.UtilityMAE
	}
	if crhMAE >= meanMAE {
		t.Fatalf("CRH total MAE %v not below mean-aggregation MAE %v", crhMAE, meanMAE)
	}
}

func TestPipelineHeavilyPerturbedUserLosesWeight(t *testing.T) {
	// The paper's Fig. 7 phenomenon: a user who draws a large noise
	// variance should see their estimated weight drop on perturbed data.
	rng := randx.New(64)
	ds := fullDataset(t, rng, 30, 40)
	mech := mustMechanism(t, 1)

	perturbed, report, err := mech.PerturbDataset(ds, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	// Find the user with the largest sampled noise variance.
	worst := 0
	for s, v := range report.UserVariances {
		if v > report.UserVariances[worst] {
			worst = s
		}
	}
	method := mustCRH(t)
	origRes, err := method.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	privRes, err := method.Run(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	truth.NormalizeWeights(origRes.Weights)
	truth.NormalizeWeights(privRes.Weights)
	if privRes.Weights[worst] >= origRes.Weights[worst] {
		t.Fatalf("heaviest-noise user %d: normalized weight %v did not drop from %v",
			worst, privRes.Weights[worst], origRes.Weights[worst])
	}
}
