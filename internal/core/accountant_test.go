package core

import (
	"errors"
	"math"
	"testing"
)

func mustAccountant(t *testing.T, lambda1 float64) *Accountant {
	t.Helper()
	a, err := NewAccountant(lambda1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAccountantValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewAccountant(bad); !errors.Is(err, ErrBadParam) {
			t.Errorf("lambda1 = %v accepted", bad)
		}
	}
	if _, err := NewAccountant(1, WithSensitivityTail(0, 0.95)); err == nil {
		t.Error("bad tail b accepted")
	}
	if _, err := NewAccountant(1, WithSensitivityTail(3, 1.5)); err == nil {
		t.Error("bad tail eta accepted")
	}
}

func TestAccountantAccessors(t *testing.T) {
	a := mustAccountant(t, 2)
	if a.Lambda1() != 2 {
		t.Errorf("Lambda1 = %v", a.Lambda1())
	}
	wantGamma := DefaultB * math.Sqrt(2*math.Log(1/(1-DefaultEta)))
	if math.Abs(a.GammaValue()-wantGamma) > 1e-12 {
		t.Errorf("GammaValue = %v, want %v", a.GammaValue(), wantGamma)
	}
	sens, err := a.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sens-wantGamma/2) > 1e-12 {
		t.Errorf("Sensitivity = %v, want %v", sens, wantGamma/2)
	}
	if conf := a.SensitivityConfidence(); conf < 0.9 || conf > 1 {
		t.Errorf("SensitivityConfidence = %v", conf)
	}
}

func TestMechanismForEpsilonRoundTrip(t *testing.T) {
	a := mustAccountant(t, 1.5)
	const delta = 0.3
	for _, eps := range []float64{0.2, 0.5, 1, 2.5} {
		m, err := a.MechanismForEpsilon(eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		back, err := a.Epsilon(m, delta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-eps) > 1e-9 {
			t.Errorf("eps %v -> mechanism -> eps %v", eps, back)
		}
	}
}

func TestStrongerPrivacyMeansMoreNoise(t *testing.T) {
	a := mustAccountant(t, 1)
	weak, err := a.MechanismForEpsilon(2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := a.MechanismForEpsilon(0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if strong.ExpectedAbsNoise() <= weak.ExpectedAbsNoise() {
		t.Fatalf("eps=0.2 noise %v not above eps=2 noise %v",
			strong.ExpectedAbsNoise(), weak.ExpectedAbsNoise())
	}
}

func TestAccountantNilMechanism(t *testing.T) {
	a := mustAccountant(t, 1)
	if _, err := a.Epsilon(nil, 0.3); !errors.Is(err, ErrBadParam) {
		t.Error("nil mechanism accepted by Epsilon")
	}
	if _, err := a.NoiseLevel(nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil mechanism accepted by NoiseLevel")
	}
	if _, _, err := a.UtilityCheck(nil, 1, 0.1, 10, 1, 0.3); !errors.Is(err, ErrBadParam) {
		t.Error("nil mechanism accepted by UtilityCheck")
	}
}

func TestNoiseLevelMatchesDefinition(t *testing.T) {
	a := mustAccountant(t, 3)
	m := mustMechanism(t, 1.5)
	c, err := a.NoiseLevel(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-2) > 1e-12 {
		t.Fatalf("c = %v, want 2", c)
	}
}

func TestUtilityCheck(t *testing.T) {
	a := mustAccountant(t, 1)
	// Generous targets over many users: the epsilon-matched mechanism
	// must pass its own check.
	const (
		eps   = 1.0
		delta = 0.3
	)
	m, err := a.MechanismForEpsilon(eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok, err := a.UtilityCheck(m, 1.0, 0.2, 500, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Feasible || !ok {
		t.Fatalf("expected feasible+ok, got tradeoff %+v ok=%v", tr, ok)
	}

	// A far noisier mechanism than the utility cap allows must fail.
	noisy := mustMechanism(t, 1e-9) // c = lambda1/lambda2 huge
	_, ok, err = a.UtilityCheck(noisy, 0.5, 0.05, 10, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("absurdly noisy mechanism passed the utility check")
	}
}
