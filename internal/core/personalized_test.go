package core

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/theory"
	"pptd/internal/truth"
)

func uniformRates(n int, rate float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rate
	}
	return out
}

func TestNewPersonalizedMechanismValidation(t *testing.T) {
	if _, err := NewPersonalizedMechanism(nil); !errors.Is(err, ErrBadParam) {
		t.Error("empty rates accepted")
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPersonalizedMechanism([]float64{1, bad}); !errors.Is(err, ErrBadParam) {
			t.Errorf("rate %v accepted", bad)
		}
	}
}

func TestPersonalizedMechanismCopiesRates(t *testing.T) {
	rates := []float64{1, 2}
	m, err := NewPersonalizedMechanism(rates)
	if err != nil {
		t.Fatal(err)
	}
	rates[0] = 99
	got, err := m.Rate(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("mechanism shares caller slice: rate = %v", got)
	}
}

func TestPersonalizedRateAccessors(t *testing.T) {
	m, err := NewPersonalizedMechanism([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumUsers() != 2 {
		t.Fatalf("NumUsers = %d", m.NumUsers())
	}
	if _, err := m.Rate(5); !errors.Is(err, ErrBadParam) {
		t.Error("bad index accepted")
	}
	n0, err := m.ExpectedAbsNoise(0)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := m.ExpectedAbsNoise(1)
	if err != nil {
		t.Fatal(err)
	}
	if n0 <= n1 {
		t.Fatalf("smaller rate should mean more noise: %v vs %v", n0, n1)
	}
	if math.Abs(n0-theory.ExpectedAbsNoise(2)) > 1e-12 {
		t.Fatalf("noise closed form mismatch: %v", n0)
	}
}

func TestPersonalizedEpsilonPerUser(t *testing.T) {
	m, err := NewPersonalizedMechanism([]float64{0.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := theory.Gamma(0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	epsStrong, err := m.EpsilonFor(0, 0.3, 1, gamma)
	if err != nil {
		t.Fatal(err)
	}
	epsWeak, err := m.EpsilonFor(1, 0.3, 1, gamma)
	if err != nil {
		t.Fatal(err)
	}
	// User 0 adds more noise (rate 0.5) and must enjoy a smaller epsilon.
	if epsStrong >= epsWeak {
		t.Fatalf("eps(noisier user) = %v not below eps(weaker privacy) = %v", epsStrong, epsWeak)
	}
	if _, err := m.EpsilonFor(9, 0.3, 1, gamma); !errors.Is(err, ErrBadParam) {
		t.Error("bad user index accepted")
	}
}

func TestPersonalizedPerturbDataset(t *testing.T) {
	rng := randx.New(70)
	ds := fullDataset(t, rng, 40, 200)
	// Half strict privacy (rate 0.5 -> E|noise| = 1), half lax (rate 50).
	rates := make([]float64, 40)
	for s := range rates {
		if s < 20 {
			rates[s] = 0.5
		} else {
			rates[s] = 50
		}
	}
	m, err := NewPersonalizedMechanism(rates)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, report, err := m.PerturbDataset(ds, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.NumObservations() != ds.NumObservations() {
		t.Fatal("sparsity changed")
	}
	// Strict-privacy users must carry visibly larger sampled variances on
	// average.
	var strict, lax stats.Welford
	for s, v := range report.UserVariances {
		if s < 20 {
			strict.Add(v)
		} else {
			lax.Add(v)
		}
	}
	if strict.Mean() <= lax.Mean() {
		t.Fatalf("strict users mean variance %v not above lax %v", strict.Mean(), lax.Mean())
	}
}

func TestPersonalizedMatchesUniformMechanism(t *testing.T) {
	// With identical rates, the personalized mechanism must behave like
	// the paper's mechanism statistically.
	rng := randx.New(71)
	ds := fullDataset(t, rng, 200, 50)
	m, err := NewPersonalizedMechanism(uniformRates(200, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := m.PerturbDataset(ds, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	want := theory.ExpectedAbsNoise(2)
	if math.Abs(report.MeanAbsNoise-want) > 0.15*want {
		t.Fatalf("mean |noise| = %v, want ~%v", report.MeanAbsNoise, want)
	}
}

func TestPersonalizedPerturbValidation(t *testing.T) {
	rng := randx.New(72)
	ds := fullDataset(t, rng, 3, 3)
	m, err := NewPersonalizedMechanism(uniformRates(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.PerturbDataset(nil, rng); !errors.Is(err, ErrBadParam) {
		t.Error("nil dataset accepted")
	}
	if _, _, err := m.PerturbDataset(ds, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil rng accepted")
	}
	wrong, err := NewPersonalizedMechanism(uniformRates(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wrong.PerturbDataset(ds, rng); !errors.Is(err, ErrBadParam) {
		t.Error("user-count mismatch accepted")
	}
	if _, err := m.NewUserPerturber(0, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil rng accepted by NewUserPerturber")
	}
	if _, err := m.NewUserPerturber(-1, rng); !errors.Is(err, ErrBadParam) {
		t.Error("negative user accepted by NewUserPerturber")
	}
}

func TestPersonalizedUtilityDegradesGracefully(t *testing.T) {
	// The extension's promise: a minority of strict-privacy users barely
	// hurts the aggregate because truth discovery down-weights them.
	rng := randx.New(73)
	ds := fullDataset(t, rng, 100, 30)
	crh, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	base, err := crh.Run(ds)
	if err != nil {
		t.Fatal(err)
	}

	rates := uniformRates(100, 20) // lax majority: E|noise| ~ 0.16
	for s := 0; s < 10; s++ {
		rates[s] = 0.125 // strict 10%: E|noise| = 2
	}
	m, err := NewPersonalizedMechanism(rates)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, _, err := m.PerturbDataset(ds, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	private, err := crh.Run(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	mae, err := stats.MAE(base.Truths, private.Truths)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.2 {
		t.Fatalf("10%% strict users moved the aggregate by %v", mae)
	}
	// And those strict users must hold lower weights than the lax crowd.
	var strictW, laxW stats.Welford
	for s, w := range private.Weights {
		if s < 10 {
			strictW.Add(w)
		} else {
			laxW.Add(w)
		}
	}
	if strictW.Mean() >= laxW.Mean() {
		t.Fatalf("strict users mean weight %v not below lax %v", strictW.Mean(), laxW.Mean())
	}
}
