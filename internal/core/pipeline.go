package core

import (
	"fmt"
	"time"

	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/truth"
)

// Pipeline bundles the full Algorithm 2 flow for simulation: perturb a
// dataset with a Mechanism, aggregate with a truth-discovery method, and
// (optionally) compare against the aggregation on the original data.
type Pipeline struct {
	mechanism *Mechanism
	method    truth.Method
}

// NewPipeline returns a pipeline running method over data perturbed by
// mechanism.
func NewPipeline(mechanism *Mechanism, method truth.Method) (*Pipeline, error) {
	if mechanism == nil {
		return nil, fmt.Errorf("%w: nil mechanism", ErrBadParam)
	}
	if method == nil {
		return nil, fmt.Errorf("%w: nil method", ErrBadParam)
	}
	return &Pipeline{mechanism: mechanism, method: method}, nil
}

// Outcome is the result of one pipeline run.
type Outcome struct {
	// Original is the truth-discovery result on the unperturbed data
	// (A(D) in the paper's notation).
	Original *truth.Result
	// Private is the result on the perturbed data (A(M(D))).
	Private *truth.Result
	// Noise describes the injected perturbation.
	Noise *Report
	// UtilityMAE is (1/N) sum_n |x*_n - xhat*_n|, the paper's utility
	// loss metric comparing the two aggregations.
	UtilityMAE float64
	// OriginalDuration and PrivateDuration time the two truth-discovery
	// runs (used by the Fig. 8 efficiency experiment).
	OriginalDuration time.Duration
	PrivateDuration  time.Duration
}

// Run executes Algorithm 2 on the dataset: perturb every user's readings,
// aggregate both the original and perturbed datasets, and measure the
// utility loss between the two aggregates.
func (p *Pipeline) Run(ds *truth.Dataset, rng *randx.RNG) (*Outcome, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadParam)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadParam)
	}

	start := time.Now()
	original, err := p.method.Run(ds)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate original data: %w", err)
	}
	originalDur := time.Since(start)

	perturbed, report, err := p.mechanism.PerturbDataset(ds, rng)
	if err != nil {
		return nil, err
	}

	start = time.Now()
	private, err := p.method.Run(perturbed)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate perturbed data: %w", err)
	}
	privateDur := time.Since(start)

	mae, err := stats.MAE(original.Truths, private.Truths)
	if err != nil {
		return nil, fmt.Errorf("core: utility MAE: %w", err)
	}
	return &Outcome{
		Original:         original,
		Private:          private,
		Noise:            report,
		UtilityMAE:       mae,
		OriginalDuration: originalDur,
		PrivateDuration:  privateDur,
	}, nil
}
