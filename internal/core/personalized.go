package core

import (
	"fmt"
	"math"

	"pptd/internal/randx"
	"pptd/internal/theory"
	"pptd/internal/truth"
)

// PersonalizedMechanism extends the paper's mechanism to heterogeneous
// privacy preferences: each user picks their own noise-variance rate
// lambda2_s instead of adopting the single server-released rate. The
// weighted-aggregation step needs no change — users who chose stronger
// privacy (smaller lambda2_s, larger noise) are down-weighted exactly
// like any other noisy user, so utility degrades gracefully in the
// fraction of high-privacy users. This is the natural "personalized LDP"
// extension of Algorithm 2; Theorem 4.8 applies per user with c_s =
// lambda1/lambda2_s.
type PersonalizedMechanism struct {
	rates []float64
}

// NewPersonalizedMechanism returns a mechanism where user s draws their
// noise variance from Exp(rates[s]). Every rate must be positive and
// finite.
func NewPersonalizedMechanism(rates []float64) (*PersonalizedMechanism, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("%w: no rates", ErrBadParam)
	}
	own := make([]float64, len(rates))
	for s, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("%w: rate[%d] = %v", ErrBadParam, s, r)
		}
		own[s] = r
	}
	return &PersonalizedMechanism{rates: own}, nil
}

// NumUsers returns the number of users the mechanism covers.
func (m *PersonalizedMechanism) NumUsers() int { return len(m.rates) }

// Rate returns user s's noise-variance rate lambda2_s.
func (m *PersonalizedMechanism) Rate(s int) (float64, error) {
	if s < 0 || s >= len(m.rates) {
		return 0, fmt.Errorf("%w: user %d of %d", ErrBadParam, s, len(m.rates))
	}
	return m.rates[s], nil
}

// ExpectedAbsNoise returns the closed-form expected |noise| for user s.
func (m *PersonalizedMechanism) ExpectedAbsNoise(s int) (float64, error) {
	rate, err := m.Rate(s)
	if err != nil {
		return 0, err
	}
	return theory.ExpectedAbsNoise(rate), nil
}

// EpsilonFor returns the per-user (eps, delta)-LDP epsilon granted to
// user s by Theorem 4.8, given the population quality lambda1 and
// sensitivity constant gamma.
func (m *PersonalizedMechanism) EpsilonFor(s int, delta, lambda1, gamma float64) (float64, error) {
	rate, err := m.Rate(s)
	if err != nil {
		return 0, err
	}
	c := theory.NoiseLevel(lambda1, rate)
	eps, err := theory.EpsilonForNoiseLevel(c, delta, lambda1, gamma)
	if err != nil {
		return 0, fmt.Errorf("core: personalized epsilon: %w", err)
	}
	return eps, nil
}

// NewUserPerturber draws user s's private noise variance from their own
// Exp(lambda2_s) and returns the perturber holding it.
func (m *PersonalizedMechanism) NewUserPerturber(s int, rng *randx.RNG) (*UserPerturber, error) {
	rate, err := m.Rate(s)
	if err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadParam)
	}
	variance := rng.Exp() / rate
	return &UserPerturber{
		variance: variance,
		sigma:    math.Sqrt(variance),
		rng:      rng,
	}, nil
}

// PerturbDataset perturbs every user with their personal rate. The
// dataset's user count must match the mechanism's.
func (m *PersonalizedMechanism) PerturbDataset(ds *truth.Dataset, rng *randx.RNG) (*truth.Dataset, *Report, error) {
	if ds == nil {
		return nil, nil, fmt.Errorf("%w: nil dataset", ErrBadParam)
	}
	if rng == nil {
		return nil, nil, fmt.Errorf("%w: nil rng", ErrBadParam)
	}
	if ds.NumUsers() != len(m.rates) {
		return nil, nil, fmt.Errorf("%w: dataset has %d users, mechanism %d",
			ErrBadParam, ds.NumUsers(), len(m.rates))
	}
	perturbers := make([]*UserPerturber, len(m.rates))
	variances := make([]float64, len(m.rates))
	for s := range m.rates {
		p, err := m.NewUserPerturber(s, rng.Split())
		if err != nil {
			return nil, nil, err
		}
		perturbers[s] = p
		variances[s] = p.Variance()
	}

	report := &Report{UserVariances: variances}
	var absSum float64
	perturbed, err := ds.Map(func(user, _ int, value float64) float64 {
		noisy := perturbers[user].Perturb(value)
		noise := math.Abs(noisy - value)
		absSum += noise
		if noise > report.MaxAbsNoise {
			report.MaxAbsNoise = noise
		}
		report.NumReadings++
		return noisy
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: personalized perturb: %w", err)
	}
	if report.NumReadings > 0 {
		report.MeanAbsNoise = absSum / float64(report.NumReadings)
	}
	return perturbed, report, nil
}
