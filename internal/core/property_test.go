package core

import (
	"math"
	"testing"
	"testing/quick"

	"pptd/internal/randx"
	"pptd/internal/theory"
	"pptd/internal/truth"
)

func TestPropertyAccountantRoundTrip(t *testing.T) {
	a := mustAccountant(t, 1.3)
	f := func(rawEps, rawDelta float64) bool {
		eps := 0.01 + math.Mod(math.Abs(rawEps), 10)
		delta := 0.01 + 0.97*math.Mod(math.Abs(rawDelta), 1)
		if math.IsNaN(eps) || math.IsNaN(delta) {
			return true
		}
		m, err := a.MechanismForEpsilon(eps, delta)
		if err != nil {
			return false
		}
		back, err := a.Epsilon(m, delta)
		if err != nil {
			return false
		}
		return math.Abs(back-eps) < 1e-6*(1+eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPerturbationPreservesShape(t *testing.T) {
	f := func(seed uint64, rawLambda2 float64) bool {
		lambda2 := 0.1 + math.Mod(math.Abs(rawLambda2), 50)
		if math.IsNaN(lambda2) {
			return true
		}
		rng := randx.New(seed)
		users := 2 + rng.Intn(8)
		objects := 1 + rng.Intn(8)
		ds := fullDatasetQuick(rng, users, objects)
		if ds == nil {
			return false
		}
		m, err := NewMechanism(lambda2)
		if err != nil {
			return false
		}
		perturbed, report, err := m.PerturbDataset(ds, rng.Split())
		if err != nil {
			return false
		}
		return perturbed.NumUsers() == users &&
			perturbed.NumObjects() == objects &&
			perturbed.NumObservations() == ds.NumObservations() &&
			len(report.UserVariances) == users &&
			report.NumReadings == ds.NumObservations() &&
			report.MaxAbsNoise >= report.MeanAbsNoise
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNoiseLevelMonotoneInEpsilon(t *testing.T) {
	// Smaller epsilon must never demand less noise.
	f := func(rawEps float64) bool {
		eps := 0.01 + math.Mod(math.Abs(rawEps), 5)
		if math.IsNaN(eps) {
			return true
		}
		c1, err1 := theory.NoiseLevelForEpsilon(eps, 0.3, 1, 2)
		c2, err2 := theory.NoiseLevelForEpsilon(eps/2, 0.3, 1, 2)
		if err1 != nil || err2 != nil {
			return false
		}
		return c2 >= c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// fullDatasetQuick builds a dense dataset without a *testing.T.
func fullDatasetQuick(rng *randx.RNG, users, objects int) *truth.Dataset {
	b := truth.NewBuilder(users, objects)
	for s := 0; s < users; s++ {
		for n := 0; n < objects; n++ {
			b.Add(s, n, float64(n)+0.1*rng.Norm())
		}
	}
	ds, err := b.Build()
	if err != nil {
		return nil
	}
	return ds
}
