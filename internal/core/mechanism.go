// Package core implements the paper's primary contribution: the
// privacy-preserving truth-discovery mechanism of Section 3.2 /
// Algorithm 2. Each user independently samples a private noise variance
// delta_s^2 from an exponential distribution with server-released rate
// lambda2, perturbs every reading with Gaussian noise of that variance,
// and the server aggregates the perturbed readings with any weighted
// truth-discovery method. The package also provides the privacy
// accountant that maps the mechanism's parameters to the
// (epsilon, delta)-local-differential-privacy guarantee of Theorem 4.8.
package core

import (
	"errors"
	"fmt"
	"math"

	"pptd/internal/randx"
	"pptd/internal/theory"
	"pptd/internal/truth"
)

// ErrBadParam reports an invalid mechanism parameter.
var ErrBadParam = errors.New("core: invalid parameter")

// Mechanism is the perturbation mechanism M of the paper, parameterized by
// the server-released hyper-parameter lambda2 (the rate of the exponential
// distribution users draw their noise variances from).
type Mechanism struct {
	lambda2 float64
}

// NewMechanism returns a Mechanism with the given lambda2 rate.
func NewMechanism(lambda2 float64) (*Mechanism, error) {
	if lambda2 <= 0 || math.IsNaN(lambda2) || math.IsInf(lambda2, 0) {
		return nil, fmt.Errorf("%w: lambda2 = %v", ErrBadParam, lambda2)
	}
	return &Mechanism{lambda2: lambda2}, nil
}

// Lambda2 returns the mechanism's noise-variance rate.
func (m *Mechanism) Lambda2() float64 { return m.lambda2 }

// ExpectedAbsNoise returns the closed-form expected |noise| per reading,
// 1/sqrt(2*lambda2).
func (m *Mechanism) ExpectedAbsNoise() float64 {
	return theory.ExpectedAbsNoise(m.lambda2)
}

// NewUserPerturber draws a private noise variance delta_s^2 ~ Exp(lambda2)
// and returns the per-user perturber holding it — step 3 of Algorithm 2.
// Each user calls this once per campaign with their own RNG.
func (m *Mechanism) NewUserPerturber(rng *randx.RNG) *UserPerturber {
	variance := rng.Exp() / m.lambda2
	return &UserPerturber{
		variance: variance,
		sigma:    math.Sqrt(variance),
		rng:      rng,
	}
}

// UserPerturber perturbs one user's readings with i.i.d. Gaussian noise of
// a privately known variance — step 4 of Algorithm 2. It is not safe for
// concurrent use (a user perturbs their own data sequentially).
type UserPerturber struct {
	variance float64
	sigma    float64
	rng      *randx.RNG
}

// Variance returns the user's private noise variance delta_s^2. In the
// real system this value never leaves the user's device; it is exposed
// for simulation and testing.
func (p *UserPerturber) Variance() float64 { return p.variance }

// Perturb returns value + N(0, delta_s^2).
func (p *UserPerturber) Perturb(value float64) float64 {
	return value + p.sigma*p.rng.Norm()
}

// PerturbAll perturbs a batch of readings, returning a new slice.
func (p *UserPerturber) PerturbAll(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = p.Perturb(v)
	}
	return out
}

// Report summarizes one dataset-level perturbation: what noise was
// actually injected. Only simulations can observe it; the server never
// sees these quantities.
type Report struct {
	// UserVariances holds each user's sampled delta_s^2.
	UserVariances []float64
	// MeanAbsNoise is the empirical mean |noise| over all readings — the
	// "Average of Added Noise" axis of the paper's figures.
	MeanAbsNoise float64
	// MaxAbsNoise is the largest |noise| over all readings.
	MaxAbsNoise float64
	// NumReadings is the number of perturbed readings.
	NumReadings int
}

// PerturbDataset applies the mechanism to every user in the dataset,
// simulating all S users of Algorithm 2 in one call: user s draws
// delta_s^2 ~ Exp(lambda2) from a stream split off rng, then perturbs each
// of their readings independently. It returns the perturbed dataset and a
// report of the injected noise.
func (m *Mechanism) PerturbDataset(ds *truth.Dataset, rng *randx.RNG) (*truth.Dataset, *Report, error) {
	if ds == nil {
		return nil, nil, fmt.Errorf("%w: nil dataset", ErrBadParam)
	}
	if rng == nil {
		return nil, nil, fmt.Errorf("%w: nil rng", ErrBadParam)
	}
	numUsers := ds.NumUsers()
	perturbers := make([]*UserPerturber, numUsers)
	variances := make([]float64, numUsers)
	for s := 0; s < numUsers; s++ {
		perturbers[s] = m.NewUserPerturber(rng.Split())
		variances[s] = perturbers[s].Variance()
	}

	report := &Report{UserVariances: variances}
	var absSum float64
	perturbed, err := ds.Map(func(user, _ int, value float64) float64 {
		noisy := perturbers[user].Perturb(value)
		noise := math.Abs(noisy - value)
		absSum += noise
		if noise > report.MaxAbsNoise {
			report.MaxAbsNoise = noise
		}
		report.NumReadings++
		return noisy
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: perturb dataset: %w", err)
	}
	if report.NumReadings > 0 {
		report.MeanAbsNoise = absSum / float64(report.NumReadings)
	}
	return perturbed, report, nil
}
