package core

import (
	"fmt"
	"math"

	"pptd/internal/theory"
)

// Default sensitivity-tail constants for the accountant (Lemma 4.7): with
// b = 3 and eta = 0.95 the sensitivity bound Delta_s <= gamma/lambda1
// holds with probability >= 0.94.
const (
	DefaultB   = 3.0
	DefaultEta = 0.95
)

// Accountant converts between the mechanism parameter lambda2 and the
// (epsilon, delta)-local-differential-privacy guarantee of Theorem 4.8,
// for a population whose error variances follow Exp(lambda1).
type Accountant struct {
	lambda1 float64
	gamma   float64
	b       float64
	eta     float64
}

// AccountantOption configures NewAccountant.
type AccountantOption interface {
	applyAccountant(*Accountant)
}

type accountantOptionFunc func(*Accountant)

func (f accountantOptionFunc) applyAccountant(a *Accountant) { f(a) }

// WithSensitivityTail overrides the Lemma 4.7 tail constants b and eta
// (defaults DefaultB, DefaultEta).
func WithSensitivityTail(b, eta float64) AccountantOption {
	return accountantOptionFunc(func(a *Accountant) { a.b, a.eta = b, eta })
}

// NewAccountant returns an accountant for data quality lambda1.
func NewAccountant(lambda1 float64, opts ...AccountantOption) (*Accountant, error) {
	if lambda1 <= 0 || math.IsNaN(lambda1) || math.IsInf(lambda1, 0) {
		return nil, fmt.Errorf("%w: lambda1 = %v", ErrBadParam, lambda1)
	}
	a := &Accountant{
		lambda1: lambda1,
		b:       DefaultB,
		eta:     DefaultEta,
	}
	for _, o := range opts {
		o.applyAccountant(a)
	}
	gamma, err := theory.Gamma(a.b, a.eta)
	if err != nil {
		return nil, fmt.Errorf("core: accountant: %w", err)
	}
	a.gamma = gamma
	return a, nil
}

// Lambda1 returns the error-variance rate the accountant assumes.
func (a *Accountant) Lambda1() float64 { return a.lambda1 }

// GammaValue returns the Lemma 4.7 constant gamma = b*sqrt(2 ln(1/(1-eta))).
func (a *Accountant) GammaValue() float64 { return a.gamma }

// Sensitivity returns the Lemma 4.7 per-user sensitivity bound
// gamma/lambda1.
func (a *Accountant) Sensitivity() (float64, error) {
	return theory.SensitivityBound(a.lambda1, a.gamma)
}

// SensitivityConfidence returns the probability with which the
// sensitivity bound holds.
func (a *Accountant) SensitivityConfidence() float64 {
	return theory.SensitivityConfidence(a.b, a.eta)
}

// MechanismForEpsilon returns the weakest mechanism (largest lambda2,
// least noise) satisfying (eps, delta)-LDP per Theorem 4.8.
func (a *Accountant) MechanismForEpsilon(eps, delta float64) (*Mechanism, error) {
	c, err := theory.NoiseLevelForEpsilon(eps, delta, a.lambda1, a.gamma)
	if err != nil {
		return nil, fmt.Errorf("core: accountant: %w", err)
	}
	lambda2, err := theory.Lambda2ForNoiseLevel(c, a.lambda1)
	if err != nil {
		return nil, fmt.Errorf("core: accountant: %w", err)
	}
	return NewMechanism(lambda2)
}

// Epsilon returns the epsilon granted by the given mechanism at privacy
// parameter delta.
func (a *Accountant) Epsilon(m *Mechanism, delta float64) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("%w: nil mechanism", ErrBadParam)
	}
	c := theory.NoiseLevel(a.lambda1, m.Lambda2())
	eps, err := theory.EpsilonForNoiseLevel(c, delta, a.lambda1, a.gamma)
	if err != nil {
		return 0, fmt.Errorf("core: accountant: %w", err)
	}
	return eps, nil
}

// NoiseLevel returns c = lambda1/lambda2 for the given mechanism.
func (a *Accountant) NoiseLevel(m *Mechanism) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("%w: nil mechanism", ErrBadParam)
	}
	return theory.NoiseLevel(a.lambda1, m.Lambda2()), nil
}

// UtilityCheck evaluates Theorem 4.9 for the given mechanism and targets:
// it reports whether the mechanism's noise level both satisfies
// (eps, delta)-LDP and stays under the (alpha, beta)-utility noise cap for
// S users.
func (a *Accountant) UtilityCheck(m *Mechanism, alpha, beta float64, numUsers int, eps, delta float64) (theory.Tradeoff, bool, error) {
	if m == nil {
		return theory.Tradeoff{}, false, fmt.Errorf("%w: nil mechanism", ErrBadParam)
	}
	tr, err := theory.Analyze(a.lambda1, alpha, beta, numUsers, eps, delta, a.gamma)
	if err != nil {
		return theory.Tradeoff{}, false, fmt.Errorf("core: accountant: %w", err)
	}
	c := theory.NoiseLevel(a.lambda1, m.Lambda2())
	ok := tr.Feasible && c >= tr.CMin && c <= tr.CMax
	return tr, ok, nil
}
