package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"pptd/internal/randx"
	"pptd/internal/truth"
)

func mustMechanism(t *testing.T, lambda2 float64) *Mechanism {
	t.Helper()
	m, err := NewMechanism(lambda2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fullDataset builds an S x N dataset with truths 0..N-1 and tiny user
// error, so perturbation effects dominate.
func fullDataset(t *testing.T, rng *randx.RNG, numUsers, numObjects int) *truth.Dataset {
	t.Helper()
	b := truth.NewBuilder(numUsers, numObjects)
	for s := 0; s < numUsers; s++ {
		for n := 0; n < numObjects; n++ {
			b.Add(s, n, float64(n)+0.01*rng.Norm())
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewMechanismValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewMechanism(bad); !errors.Is(err, ErrBadParam) {
			t.Errorf("lambda2 = %v accepted", bad)
		}
	}
	m := mustMechanism(t, 2.5)
	if m.Lambda2() != 2.5 {
		t.Errorf("Lambda2 = %v", m.Lambda2())
	}
}

func TestUserPerturberVarianceDistribution(t *testing.T) {
	// delta_s^2 ~ Exp(lambda2): check the sample mean over many users.
	rng := randx.New(50)
	m := mustMechanism(t, 4)
	const users = 200000
	var sum float64
	for i := 0; i < users; i++ {
		sum += m.NewUserPerturber(rng.Split()).Variance()
	}
	mean := sum / users
	if math.Abs(mean-0.25) > 0.005 {
		t.Fatalf("mean sampled variance = %v, want ~0.25", mean)
	}
}

func TestUserPerturberNoiseIsUnbiasedWithSampledVariance(t *testing.T) {
	rng := randx.New(51)
	m := mustMechanism(t, 1)
	p := m.NewUserPerturber(rng.Split())
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		noise := p.Perturb(10) - 10
		sum += noise
		sumSq += noise * noise
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02*math.Sqrt(p.Variance())+1e-3 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(variance-p.Variance()) > 0.05*p.Variance() {
		t.Errorf("noise variance = %v, want ~%v", variance, p.Variance())
	}
}

func TestPerturbAllLengthAndIndependence(t *testing.T) {
	rng := randx.New(52)
	m := mustMechanism(t, 1)
	p := m.NewUserPerturber(rng.Split())
	in := []float64{1, 2, 3, 4}
	out := p.PerturbAll(in)
	if len(out) != len(in) {
		t.Fatalf("length %d, want %d", len(out), len(in))
	}
	// Input must be untouched.
	for i, v := range []float64{1, 2, 3, 4} {
		if in[i] != v {
			t.Fatal("PerturbAll mutated its input")
		}
	}
}

func TestPerturbDatasetShapeAndReport(t *testing.T) {
	rng := randx.New(53)
	ds := fullDataset(t, rng, 20, 10)
	m := mustMechanism(t, 2)
	perturbed, report, err := m.PerturbDataset(ds, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.NumUsers() != ds.NumUsers() || perturbed.NumObjects() != ds.NumObjects() {
		t.Fatal("perturbed dataset changed shape")
	}
	if perturbed.NumObservations() != ds.NumObservations() {
		t.Fatal("perturbed dataset changed sparsity")
	}
	if len(report.UserVariances) != ds.NumUsers() {
		t.Fatalf("report has %d variances", len(report.UserVariances))
	}
	if report.NumReadings != ds.NumObservations() {
		t.Fatalf("report counted %d readings, want %d", report.NumReadings, ds.NumObservations())
	}
	if report.MeanAbsNoise <= 0 || report.MaxAbsNoise < report.MeanAbsNoise {
		t.Fatalf("implausible noise report %+v", report)
	}
}

func TestPerturbDatasetMeanNoiseTracksClosedForm(t *testing.T) {
	rng := randx.New(54)
	ds := fullDataset(t, rng, 300, 40)
	for _, lambda2 := range []float64{0.5, 2, 8} {
		m := mustMechanism(t, lambda2)
		_, report, err := m.PerturbDataset(ds, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		want := m.ExpectedAbsNoise()
		if math.Abs(report.MeanAbsNoise-want) > 0.15*want {
			t.Errorf("lambda2 = %v: mean |noise| = %v, closed form %v", lambda2, report.MeanAbsNoise, want)
		}
	}
}

func TestPerturbDatasetNilArgs(t *testing.T) {
	rng := randx.New(55)
	ds := fullDataset(t, rng, 2, 2)
	m := mustMechanism(t, 1)
	if _, _, err := m.PerturbDataset(nil, rng); !errors.Is(err, ErrBadParam) {
		t.Error("nil dataset accepted")
	}
	if _, _, err := m.PerturbDataset(ds, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil rng accepted")
	}
}

func TestPerturbDatasetDeterministicPerSeed(t *testing.T) {
	rng1 := randx.New(56)
	rng2 := randx.New(56)
	dsA := fullDataset(t, rng1, 5, 5)
	dsB := fullDataset(t, rng2, 5, 5)
	m := mustMechanism(t, 1)
	pa, _, err := m.PerturbDataset(dsA, randx.New(99))
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := m.PerturbDataset(dsB, randx.New(99))
	if err != nil {
		t.Fatal(err)
	}
	da, db := pa.Dense(), pb.Dense()
	for s := range da {
		for n := range da[s] {
			if da[s][n] != db[s][n] {
				t.Fatalf("non-deterministic perturbation at (%d,%d)", s, n)
			}
		}
	}
}

func TestExpectedAbsNoiseDecreasesInLambda2(t *testing.T) {
	f := func(raw float64) bool {
		l := 0.1 + math.Mod(math.Abs(raw), 100)
		if math.IsNaN(l) {
			return true
		}
		m1, err1 := NewMechanism(l)
		m2, err2 := NewMechanism(2 * l)
		if err1 != nil || err2 != nil {
			return false
		}
		return m2.ExpectedAbsNoise() < m1.ExpectedAbsNoise()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
