package eval

import (
	"errors"
	"testing"
)

func TestTheoremA1BoundDominatesEmpirical(t *testing.T) {
	fig, err := TheoremA1(TheoremA1Config{
		UserCounts: []int{5, 20, 80},
		Lambda1:    1,
		Alpha:      1,
		NumObjects: 20,
		Trials:     40,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	empirical, bound := fig.Series[0], fig.Series[1]
	for i := range empirical.Points {
		if empirical.Points[i].Y > bound.Points[i].Y+1e-9 {
			t.Errorf("S=%v: empirical %v exceeds bound %v",
				empirical.Points[i].X, empirical.Points[i].Y, bound.Points[i].Y)
		}
	}
	// The bound must shrink with S.
	if bound.Points[0].Y <= bound.Points[2].Y {
		t.Errorf("bound did not shrink with S: %v -> %v", bound.Points[0].Y, bound.Points[2].Y)
	}
}

func TestTheoremA1Validation(t *testing.T) {
	base := TheoremA1Config{
		UserCounts: []int{5}, Lambda1: 1, Alpha: 1, NumObjects: 5, Trials: 1,
	}
	mutations := []struct {
		name   string
		mutate func(*TheoremA1Config)
	}{
		{name: "no counts", mutate: func(c *TheoremA1Config) { c.UserCounts = nil }},
		{name: "bad lambda1", mutate: func(c *TheoremA1Config) { c.Lambda1 = 0 }},
		{name: "bad alpha", mutate: func(c *TheoremA1Config) { c.Alpha = 0 }},
		{name: "bad objects", mutate: func(c *TheoremA1Config) { c.NumObjects = 0 }},
		{name: "bad trials", mutate: func(c *TheoremA1Config) { c.Trials = 0 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := TheoremA1(cfg); !errors.Is(err, ErrBadConfig) {
				t.Error("invalid config accepted")
			}
		})
	}
	bad := base
	bad.UserCounts = []int{0}
	if _, err := TheoremA1(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("zero user count accepted")
	}
}

func TestCategoricalShape(t *testing.T) {
	fig, err := Categorical(CategoricalConfig{
		Epsilons:      []float64{0.5, 4},
		NumUsers:      60,
		NumObjects:    60,
		NumCategories: 3,
		MinCorrect:    0.45,
		MaxCorrect:    0.95,
		Trials:        3,
		Seed:          12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		// More privacy budget => no worse accuracy.
		if s.Points[1].Y < s.Points[0].Y-0.05 {
			t.Errorf("%s: accuracy decreased with epsilon: %v -> %v",
				s.Label, s.Points[0].Y, s.Points[1].Y)
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Errorf("%s: accuracy %v out of [0,1]", s.Label, p.Y)
			}
		}
	}
	// Weighted voting should beat majority at every epsilon (quality
	// spread is wide by construction).
	weighted, majority := fig.Series[0], fig.Series[1]
	for i := range weighted.Points {
		if weighted.Points[i].Y < majority.Points[i].Y-0.02 {
			t.Errorf("eps=%v: weighted %v below majority %v",
				weighted.Points[i].X, weighted.Points[i].Y, majority.Points[i].Y)
		}
	}
}

func TestCategoricalValidation(t *testing.T) {
	base := CategoricalConfig{
		Epsilons: []float64{1}, NumUsers: 10, NumObjects: 10, NumCategories: 3,
		MinCorrect: 0.5, MaxCorrect: 0.9, Trials: 1,
	}
	mutations := []struct {
		name   string
		mutate func(*CategoricalConfig)
	}{
		{name: "no epsilons", mutate: func(c *CategoricalConfig) { c.Epsilons = nil }},
		{name: "bad crowd", mutate: func(c *CategoricalConfig) { c.NumUsers = 0 }},
		{name: "one category", mutate: func(c *CategoricalConfig) { c.NumCategories = 1 }},
		{name: "bad correctness", mutate: func(c *CategoricalConfig) { c.MinCorrect = 0 }},
		{name: "inverted correctness", mutate: func(c *CategoricalConfig) { c.MinCorrect = 0.9; c.MaxCorrect = 0.5 }},
		{name: "bad trials", mutate: func(c *CategoricalConfig) { c.Trials = 0 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Categorical(cfg); !errors.Is(err, ErrBadConfig) {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestConvergenceShape(t *testing.T) {
	res, err := Convergence(ConvergenceConfig{
		Tolerances: []float64{1e-2, 1e-8},
		NumUsers:   60,
		NumObjects: 15,
		Lambda1:    1,
		Lambda2:    2,
		Trials:     2,
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tighter tolerance must not need fewer iterations, on both datasets.
	for _, s := range res.Iterations.Series {
		if s.Points[1].Y < s.Points[0].Y {
			t.Errorf("%s: iterations decreased with tighter tolerance: %v -> %v",
				s.Label, s.Points[0].Y, s.Points[1].Y)
		}
	}
	// Original and perturbed iteration counts should track each other
	// (the paper's efficiency claim).
	orig, pert := res.Iterations.Series[0], res.Iterations.Series[1]
	for i := range orig.Points {
		if diff := pert.Points[i].Y - orig.Points[i].Y; diff > 3 || diff < -3 {
			t.Errorf("perturbed iterations diverge from original: %v vs %v",
				pert.Points[i].Y, orig.Points[i].Y)
		}
	}
}

func TestConvergenceValidation(t *testing.T) {
	base := ConvergenceConfig{
		Tolerances: []float64{1e-4}, NumUsers: 10, NumObjects: 5,
		Lambda1: 1, Lambda2: 1, Trials: 1,
	}
	bad := base
	bad.Tolerances = nil
	if _, err := Convergence(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("empty tolerance sweep accepted")
	}
	bad = base
	bad.Tolerances = []float64{-1}
	if _, err := Convergence(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("negative tolerance accepted")
	}
	bad = base
	bad.Lambda2 = 0
	if _, err := Convergence(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("bad lambda2 accepted")
	}
}

func TestCostComparisonValidation(t *testing.T) {
	base := CostConfig{
		UserCounts: []int{10}, NumObjects: 5, Lambda1: 1, Lambda2: 1, Trials: 1,
	}
	bad := base
	bad.UserCounts = nil
	if _, err := CostComparison(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("empty user sweep accepted")
	}
	bad = base
	bad.UserCounts = []int{1}
	if _, err := CostComparison(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("single-user cohort accepted")
	}
	bad = base
	bad.NumObjects = 0
	if _, err := CostComparison(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("zero objects accepted")
	}
}

func TestCostComparisonGap(t *testing.T) {
	res, err := CostComparison(CostConfig{
		UserCounts: []int{20},
		NumObjects: 10,
		Lambda1:    1,
		Lambda2:    2,
		Trials:     1,
		Seed:       14,
	})
	if err != nil {
		t.Fatal(err)
	}
	perturb := res.Bytes.Series[0].Points[0].Y
	secure := res.Bytes.Series[1].Points[0].Y
	if secure <= 3*perturb {
		t.Fatalf("secure-agg bytes %v not well above perturbation %v", secure, perturb)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("table rows = %d", len(res.Table.Rows))
	}
}
