package eval

import (
	"fmt"
	"math"

	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/theory"
	"pptd/internal/truth"
)

// Calibrated sensitivity-tail constants used by the experiment harness.
//
// The accountant's conservative default (b = 3, eta = 0.95) covers the
// 3-sigma tail of the worst plausible user; the paper's plotted noise
// magnitudes (average |noise| approaching 1 as epsilon tends to 0 at
// lambda1 = 1) imply an effective sensitivity near the typical claim
// spread instead. These constants reproduce the paper's magnitudes; the
// curve *shapes* are independent of this choice because gamma only scales
// the noise axis. EXPERIMENTS.md discusses the calibration.
const (
	ExperimentB   = 0.5
	ExperimentEta = 0.2
)

// TradeoffConfig parameterizes the utility-privacy trade-off experiments
// (Figs. 2, 5 and 6).
type TradeoffConfig struct {
	// Source generates the original data per trial.
	Source Source
	// Method is the truth-discovery algorithm (CRH for Figs. 2/6, GTM
	// for Fig. 5).
	Method truth.Method
	// Lambda1 is the data-quality rate used by the privacy accountant.
	Lambda1 float64
	// Epsilons is the privacy sweep (x axis).
	Epsilons []float64
	// Deltas selects the curves (one series per delta).
	Deltas []float64
	// Trials averages each point over this many seeded repetitions.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c TradeoffConfig) validate() error {
	switch {
	case c.Source.Generate == nil:
		return fmt.Errorf("%w: nil source", ErrBadConfig)
	case c.Method == nil:
		return fmt.Errorf("%w: nil method", ErrBadConfig)
	case c.Lambda1 <= 0 || math.IsNaN(c.Lambda1):
		return fmt.Errorf("%w: lambda1 = %v", ErrBadConfig, c.Lambda1)
	case len(c.Epsilons) == 0:
		return fmt.Errorf("%w: empty epsilon sweep", ErrBadConfig)
	case len(c.Deltas) == 0:
		return fmt.Errorf("%w: empty delta list", ErrBadConfig)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// DefaultEpsilons is the paper's epsilon sweep (0, 3], with an extra
// point near zero where the injected noise approaches 1.
func DefaultEpsilons() []float64 {
	eps := make([]float64, 0, 13)
	eps = append(eps, 0.1)
	for e := 0.25; e <= 3.001; e += 0.25 {
		eps = append(eps, e)
	}
	return eps
}

// DefaultDeltas is the paper's delta set.
func DefaultDeltas() []float64 { return []float64{0.2, 0.3, 0.4, 0.5} }

// TradeoffResult holds the two panels of a trade-off figure.
type TradeoffResult struct {
	// MAE is panel (a): utility loss versus epsilon, one series per delta.
	MAE *Figure
	// Noise is panel (b): average added noise versus epsilon.
	Noise *Figure
}

// Tradeoff runs the utility-privacy trade-off experiment: for every
// (delta, epsilon) it derives the required noise level c from Theorem 4.8,
// instantiates the mechanism with lambda2 = lambda1/c, perturbs the data,
// aggregates with the configured method, and measures the MAE between the
// aggregates on original and perturbed data alongside the injected noise.
func Tradeoff(cfg TradeoffConfig, idPrefix string) (*TradeoffResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gamma, err := theory.Gamma(ExperimentB, ExperimentEta)
	if err != nil {
		return nil, fmt.Errorf("eval: tradeoff: %w", err)
	}

	maeFig := &Figure{
		ID:     idPrefix + "a",
		Title:  fmt.Sprintf("utility-privacy trade-off on %s (%s): MAE", cfg.Source.Name, cfg.Method.Name()),
		XLabel: "epsilon",
		YLabel: "MAE",
	}
	noiseFig := &Figure{
		ID:     idPrefix + "b",
		Title:  fmt.Sprintf("utility-privacy trade-off on %s (%s): noise", cfg.Source.Name, cfg.Method.Name()),
		XLabel: "epsilon",
		YLabel: "average added noise",
	}

	root := randx.New(cfg.Seed)
	for _, delta := range cfg.Deltas {
		maeSeries := Series{Label: fmt.Sprintf("delta=%.3g", delta)}
		noiseSeries := Series{Label: fmt.Sprintf("delta=%.3g", delta)}
		for _, eps := range cfg.Epsilons {
			c, err := theory.NoiseLevelForEpsilon(eps, delta, cfg.Lambda1, gamma)
			if err != nil {
				return nil, fmt.Errorf("eval: tradeoff at eps=%v delta=%v: %w", eps, delta, err)
			}
			lambda2, err := theory.Lambda2ForNoiseLevel(c, cfg.Lambda1)
			if err != nil {
				return nil, fmt.Errorf("eval: tradeoff at eps=%v delta=%v: %w", eps, delta, err)
			}
			mech, err := core.NewMechanism(lambda2)
			if err != nil {
				return nil, fmt.Errorf("eval: tradeoff at eps=%v delta=%v: %w", eps, delta, err)
			}
			pipe, err := core.NewPipeline(mech, cfg.Method)
			if err != nil {
				return nil, fmt.Errorf("eval: tradeoff: %w", err)
			}

			var maeAcc, noiseAcc stats.Welford
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := root.Split()
				ds, _, err := cfg.Source.Generate(rng)
				if err != nil {
					return nil, err
				}
				out, err := pipe.Run(ds, rng)
				if err != nil {
					return nil, fmt.Errorf("eval: tradeoff trial: %w", err)
				}
				maeAcc.Add(out.UtilityMAE)
				noiseAcc.Add(out.Noise.MeanAbsNoise)
			}
			maeSeries.Points = append(maeSeries.Points, Point{X: eps, Y: maeAcc.Mean()})
			noiseSeries.Points = append(noiseSeries.Points, Point{X: eps, Y: noiseAcc.Mean()})
		}
		maeFig.Series = append(maeFig.Series, maeSeries)
		noiseFig.Series = append(noiseFig.Series, noiseSeries)
	}
	return &TradeoffResult{MAE: maeFig, Noise: noiseFig}, nil
}
