package eval

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/floorplan"
	"pptd/internal/synthetic"
	"pptd/internal/truth"
)

// smallSynthetic keeps shape-test runtimes low while preserving the
// qualitative behaviour.
func smallSynthetic() Source {
	cfg := synthetic.Default()
	cfg.NumUsers = 80
	cfg.NumObjects = 20
	return SyntheticSource(cfg)
}

func mustCRH(t *testing.T) truth.Method {
	t.Helper()
	m, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func meanY(s Series) float64 {
	var sum float64
	for _, p := range s.Points {
		sum += p.Y
	}
	return sum / float64(len(s.Points))
}

func TestTradeoffShapes(t *testing.T) {
	// Reproduces the qualitative content of Fig. 2: (1) noise decreases
	// with epsilon, (2) smaller delta means more noise, (3) MAE stays
	// well below the injected noise at low epsilon.
	crh := mustCRH(t)
	res, err := Tradeoff(TradeoffConfig{
		Source:   smallSynthetic(),
		Method:   crh,
		Lambda1:  1,
		Epsilons: []float64{0.25, 1, 3},
		Deltas:   []float64{0.2, 0.5},
		Trials:   3,
		Seed:     1,
	}, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MAE.Series) != 2 || len(res.Noise.Series) != 2 {
		t.Fatalf("series counts: mae %d noise %d", len(res.MAE.Series), len(res.Noise.Series))
	}
	for _, s := range res.Noise.Series {
		if len(s.Points) != 3 {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
		if s.Points[0].Y <= s.Points[2].Y {
			t.Errorf("series %q: noise at eps=0.25 (%v) not above eps=3 (%v)",
				s.Label, s.Points[0].Y, s.Points[2].Y)
		}
	}
	// delta=0.2 (stronger privacy) must inject more noise than delta=0.5.
	if meanY(res.Noise.Series[0]) <= meanY(res.Noise.Series[1]) {
		t.Errorf("delta=0.2 noise %v not above delta=0.5 noise %v",
			meanY(res.Noise.Series[0]), meanY(res.Noise.Series[1]))
	}
	// Headline claim: at the strongest privacy point, utility loss is a
	// small fraction of the injected noise.
	lowEpsMAE := res.MAE.Series[0].Points[0].Y
	lowEpsNoise := res.Noise.Series[0].Points[0].Y
	if lowEpsMAE > lowEpsNoise/3 {
		t.Errorf("MAE %v not well below noise %v at eps=0.25", lowEpsMAE, lowEpsNoise)
	}
}

func TestTradeoffValidation(t *testing.T) {
	crh := mustCRH(t)
	valid := TradeoffConfig{
		Source:   smallSynthetic(),
		Method:   crh,
		Lambda1:  1,
		Epsilons: []float64{1},
		Deltas:   []float64{0.3},
		Trials:   1,
	}
	tests := []struct {
		name   string
		mutate func(*TradeoffConfig)
	}{
		{name: "nil source", mutate: func(c *TradeoffConfig) { c.Source = Source{} }},
		{name: "nil method", mutate: func(c *TradeoffConfig) { c.Method = nil }},
		{name: "bad lambda1", mutate: func(c *TradeoffConfig) { c.Lambda1 = 0 }},
		{name: "no epsilons", mutate: func(c *TradeoffConfig) { c.Epsilons = nil }},
		{name: "no deltas", mutate: func(c *TradeoffConfig) { c.Deltas = nil }},
		{name: "no trials", mutate: func(c *TradeoffConfig) { c.Trials = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			if _, err := Tradeoff(cfg, "figX"); !errors.Is(err, ErrBadConfig) {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestLambda1EffectShape(t *testing.T) {
	// Fig. 3: both MAE and noise decrease as lambda1 grows.
	crh := mustCRH(t)
	res, err := Lambda1Effect(Lambda1Config{
		Lambda1s:   []float64{0.5, 2, 8},
		Epsilon:    0.25,
		Delta:      0.2,
		NumUsers:   80,
		NumObjects: 20,
		Method:     crh,
		Trials:     3,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	noise := res.Noise.Series[0].Points
	if noise[0].Y <= noise[2].Y {
		t.Errorf("noise at lambda1=0.5 (%v) not above lambda1=8 (%v)", noise[0].Y, noise[2].Y)
	}
	mae := res.MAE.Series[0].Points
	if mae[0].Y <= mae[2].Y {
		t.Errorf("MAE at lambda1=0.5 (%v) not above lambda1=8 (%v)", mae[0].Y, mae[2].Y)
	}
}

func TestLambda1EffectValidation(t *testing.T) {
	crh := mustCRH(t)
	if _, err := Lambda1Effect(Lambda1Config{
		Lambda1s: nil, Epsilon: 1, Delta: 0.3, NumUsers: 10, NumObjects: 5,
		Method: crh, Trials: 1,
	}); !errors.Is(err, ErrBadConfig) {
		t.Error("empty sweep accepted")
	}
	if _, err := Lambda1Effect(Lambda1Config{
		Lambda1s: []float64{1}, Epsilon: 0, Delta: 0.3, NumUsers: 10, NumObjects: 5,
		Method: crh, Trials: 1,
	}); !errors.Is(err, ErrBadConfig) {
		t.Error("zero epsilon accepted")
	}
}

func TestUsersEffectShape(t *testing.T) {
	// Fig. 4: noise flat in S, MAE decreasing in S.
	crh := mustCRH(t)
	res, err := UsersEffect(UsersConfig{
		UserCounts: []int{50, 200, 500},
		Lambda1:    1,
		Lambda2:    4,
		NumObjects: 20,
		Method:     crh,
		Trials:     4,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	noise := res.Noise.Series[0].Points
	for i := 1; i < len(noise); i++ {
		ratio := noise[i].Y / noise[0].Y
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("noise not flat in S: %v vs %v", noise[i].Y, noise[0].Y)
		}
	}
	mae := res.MAE.Series[0].Points
	if mae[0].Y <= mae[2].Y {
		t.Errorf("MAE at S=50 (%v) not above S=500 (%v)", mae[0].Y, mae[2].Y)
	}
}

func TestUsersEffectValidation(t *testing.T) {
	crh := mustCRH(t)
	base := UsersConfig{
		UserCounts: []int{10}, Lambda1: 1, Lambda2: 1, NumObjects: 5,
		Method: crh, Trials: 1,
	}
	bad := base
	bad.UserCounts = nil
	if _, err := UsersEffect(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("empty user sweep accepted")
	}
	bad = base
	bad.Lambda2 = 0
	if _, err := UsersEffect(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("bad lambda2 accepted")
	}
	bad = base
	bad.UserCounts = []int{0}
	if _, err := UsersEffect(bad); !errors.Is(err, ErrBadConfig) {
		t.Error("zero user count accepted")
	}
}

func TestWeightsExperiment(t *testing.T) {
	fp := floorplan.Default()
	fp.NumUsers = 60
	fp.NumSegments = 40
	res, err := Weights(WeightsConfig{
		Floorplan:     fp,
		Lambda2:       2,
		NumShownUsers: 7,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []*Figure{res.Original, res.Perturbed} {
		if len(fig.Series) != 2 {
			t.Fatalf("%s has %d series", fig.ID, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Points) != 7 {
				t.Fatalf("%s series %q has %d points", fig.ID, s.Label, len(s.Points))
			}
		}
	}
	// The paper's observation: estimated weights track true weights.
	if res.CorrOriginal < 0.5 {
		t.Errorf("weight correlation on original data = %v, want strong positive", res.CorrOriginal)
	}
	if res.CorrPerturbed < 0.3 {
		t.Errorf("weight correlation on perturbed data = %v, want positive", res.CorrPerturbed)
	}
}

func TestWeightsValidation(t *testing.T) {
	if _, err := Weights(WeightsConfig{Lambda2: 0, NumShownUsers: 7}); !errors.Is(err, ErrBadConfig) {
		t.Error("bad lambda2 accepted")
	}
	if _, err := Weights(WeightsConfig{Lambda2: 1, NumShownUsers: 0}); !errors.Is(err, ErrBadConfig) {
		t.Error("zero shown users accepted")
	}
}

func TestPickSpread(t *testing.T) {
	quality := []float64{5, 1, 3, 2, 4}
	got := pickSpread(quality, 3)
	if len(got) != 3 {
		t.Fatalf("got %d indices", len(got))
	}
	// First must be the best (quality 1 at index 1), last the worst
	// (quality 5 at index 0).
	if got[0] != 1 || got[2] != 0 {
		t.Fatalf("spread = %v", got)
	}
	if one := pickSpread(quality, 1); len(one) != 1 || one[0] != 1 {
		t.Fatalf("k=1 spread = %v", one)
	}
	if all := pickSpread(quality, 10); len(all) != 5 {
		t.Fatalf("k>n spread length = %d", len(all))
	}
}

func TestEfficiencyExperiment(t *testing.T) {
	crh := mustCRH(t)
	res, err := Efficiency(EfficiencyConfig{
		NoiseTargets: []float64{0.2, 0.6, 1.0},
		NumUsers:     60,
		NumObjects:   20,
		Lambda1:      1,
		Method:       crh,
		Trials:       2,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Time.Series) != 2 {
		t.Fatalf("time figure has %d series", len(res.Time.Series))
	}
	for _, s := range res.Time.Series {
		for _, p := range s.Points {
			if p.Y < 0 || math.IsNaN(p.Y) {
				t.Fatalf("bad timing point %+v in %q", p, s.Label)
			}
		}
	}
	iters := res.Iterations.Series[0].Points
	for _, p := range iters {
		if p.Y < 1 || p.Y > float64(truth.DefaultMaxIterations) {
			t.Fatalf("implausible iteration count %v", p.Y)
		}
	}
	if res.BaselineMillis < 0 {
		t.Fatalf("baseline time %v", res.BaselineMillis)
	}
}

func TestEfficiencyValidation(t *testing.T) {
	crh := mustCRH(t)
	if _, err := Efficiency(EfficiencyConfig{
		NoiseTargets: []float64{-1}, NumUsers: 10, NumObjects: 5,
		Lambda1: 1, Method: crh, Trials: 1,
	}); !errors.Is(err, ErrBadConfig) {
		t.Error("negative noise target accepted")
	}
	if _, err := Efficiency(EfficiencyConfig{
		NoiseTargets: nil, NumUsers: 10, NumObjects: 5,
		Lambda1: 1, Method: crh, Trials: 1,
	}); !errors.Is(err, ErrBadConfig) {
		t.Error("empty noise sweep accepted")
	}
}

func TestMethodComparisonWeightedWins(t *testing.T) {
	crh := mustCRH(t)
	fig, err := MethodComparison(MethodsConfig{
		Source:       smallSynthetic(),
		Methods:      []truth.Method{crh, truth.Mean{}},
		NoiseTargets: []float64{0.8},
		Trials:       4,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	crhMAE := fig.Series[0].Points[0].Y
	meanMAE := fig.Series[1].Points[0].Y
	if crhMAE >= meanMAE {
		t.Errorf("CRH MAE %v not below mean MAE %v under noise", crhMAE, meanMAE)
	}
}

func TestRegistryContainsAllFigures(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "ablation-methods", "ablation-attack"}
	reg := Registry()
	found := make(map[string]bool, len(reg))
	for _, e := range reg {
		found[e.Name] = true
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
	for _, name := range want {
		if !found[name] {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRegistryQuickRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("quick registry sweep still costs a few seconds")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			rep, err := e.Run(Options{Seed: 7, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Name != e.Name {
				t.Errorf("report name %q != experiment %q", rep.Name, e.Name)
			}
			if len(rep.Figures) == 0 {
				t.Error("no figures produced")
			}
			for _, fig := range rep.Figures {
				if len(fig.Series) == 0 {
					t.Errorf("figure %s empty", fig.ID)
				}
				if out := fig.Table().Render(); out == "" {
					t.Errorf("figure %s renders empty", fig.ID)
				}
			}
		})
	}
}
