package eval

import (
	"fmt"
	"math"

	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/synthetic"
	"pptd/internal/truth"
)

// EfficiencyConfig parameterizes the Fig. 8 experiment: truth-discovery
// running time as a function of the injected noise level.
type EfficiencyConfig struct {
	// NoiseTargets is the sweep over average |noise| values (x axis);
	// lambda2 is derived as 1/(2*target^2) from the closed form.
	NoiseTargets []float64
	// NumUsers and NumObjects shape the workload; the paper notes TD
	// scales linearly in objects, so pick sizes large enough to time.
	NumUsers, NumObjects int
	// Lambda1 fixes the data quality.
	Lambda1 float64
	// Method aggregates the data.
	Method truth.Method
	// Trials averages each point.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c EfficiencyConfig) validate() error {
	switch {
	case len(c.NoiseTargets) == 0:
		return fmt.Errorf("%w: empty noise sweep", ErrBadConfig)
	case c.NumUsers <= 0 || c.NumObjects <= 0:
		return fmt.Errorf("%w: crowd %dx%d", ErrBadConfig, c.NumUsers, c.NumObjects)
	case c.Lambda1 <= 0 || math.IsNaN(c.Lambda1):
		return fmt.Errorf("%w: lambda1 = %v", ErrBadConfig, c.Lambda1)
	case c.Method == nil:
		return fmt.Errorf("%w: nil method", ErrBadConfig)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// DefaultNoiseTargets is the Fig. 8 sweep over average |noise|.
func DefaultNoiseTargets() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// EfficiencyResult holds the Fig. 8 outputs.
type EfficiencyResult struct {
	// Time plots truth-discovery wall time (milliseconds) on perturbed
	// data versus noise, with the no-noise baseline as a second series.
	Time *Figure
	// Iterations plots iterations-to-convergence versus noise (hardware-
	// independent complement to wall time).
	Iterations *Figure
	// BaselineMillis is the average time on original data.
	BaselineMillis float64
}

// Efficiency runs the Fig. 8 experiment: hold the workload fixed, sweep
// the noise level, and time truth discovery on original versus perturbed
// data. The paper's claim is that running time is insensitive to the
// noise level (perturbation does not change convergence behaviour).
func Efficiency(cfg EfficiencyConfig) (*EfficiencyResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gen := synthetic.Config{
		NumUsers:    cfg.NumUsers,
		NumObjects:  cfg.NumObjects,
		Lambda1:     cfg.Lambda1,
		TruthLow:    0,
		TruthHigh:   10,
		ObserveProb: 1,
	}

	timeFig := &Figure{
		ID:     "fig8",
		Title:  fmt.Sprintf("efficiency: %s running time vs noise (%dx%d)", cfg.Method.Name(), cfg.NumUsers, cfg.NumObjects),
		XLabel: "average added noise",
		YLabel: "time (ms)",
	}
	iterFig := &Figure{
		ID:     "fig8-iters",
		Title:  "efficiency: iterations to convergence vs noise",
		XLabel: "average added noise",
		YLabel: "iterations",
	}
	perturbedTime := Series{Label: "perturbed"}
	baselineTime := Series{Label: "original"}
	iterSeries := Series{Label: "iterations"}

	root := randx.New(cfg.Seed)
	var baselineAcc stats.Welford
	for _, target := range cfg.NoiseTargets {
		if target <= 0 || math.IsNaN(target) {
			return nil, fmt.Errorf("%w: noise target %v", ErrBadConfig, target)
		}
		// Invert E|noise| = 1/sqrt(2 lambda2).
		lambda2 := 1 / (2 * target * target)
		mech, err := core.NewMechanism(lambda2)
		if err != nil {
			return nil, fmt.Errorf("eval: efficiency: %w", err)
		}
		pipe, err := core.NewPipeline(mech, cfg.Method)
		if err != nil {
			return nil, fmt.Errorf("eval: efficiency: %w", err)
		}

		var timeAcc, iterAcc, noiseAcc, origAcc stats.Welford
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := root.Split()
			inst, err := synthetic.Generate(gen, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: efficiency: %w", err)
			}
			out, err := pipe.Run(inst.Dataset, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: efficiency: %w", err)
			}
			timeAcc.Add(float64(out.PrivateDuration.Microseconds()) / 1000)
			origAcc.Add(float64(out.OriginalDuration.Microseconds()) / 1000)
			iterAcc.Add(float64(out.Private.Iterations))
			noiseAcc.Add(out.Noise.MeanAbsNoise)
		}
		baselineAcc.Merge(origAcc)
		x := noiseAcc.Mean()
		perturbedTime.Points = append(perturbedTime.Points, Point{X: x, Y: timeAcc.Mean()})
		baselineTime.Points = append(baselineTime.Points, Point{X: x, Y: origAcc.Mean()})
		iterSeries.Points = append(iterSeries.Points, Point{X: x, Y: iterAcc.Mean()})
	}
	timeFig.Series = []Series{perturbedTime, baselineTime}
	iterFig.Series = []Series{iterSeries}
	return &EfficiencyResult{
		Time:           timeFig,
		Iterations:     iterFig,
		BaselineMillis: baselineAcc.Mean(),
	}, nil
}
