package eval

import (
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	return &Figure{
		ID:     "figX",
		Title:  "sample",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Label: "b", Points: []Point{{1, 11}, {2, 21}, {3, 31}}},
		},
	}
}

func TestFigureTableAlignsSeries(t *testing.T) {
	table := sampleFigure().Table()
	if len(table.Header) != 3 || table.Header[0] != "x" || table.Header[1] != "a" || table.Header[2] != "b" {
		t.Fatalf("header = %v", table.Header)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (union of x values)", len(table.Rows))
	}
	// x=3 exists only in series b; series a's cell must be empty.
	last := table.Rows[2]
	if last[0] != "3" || last[1] != "" || last[2] != "31" {
		t.Fatalf("row for x=3 = %v", last)
	}
}

func TestFigureTableEmptySeriesLabelUsesYLabel(t *testing.T) {
	fig := &Figure{
		ID: "f", XLabel: "x", YLabel: "metric",
		Series: []Series{{Points: []Point{{1, 2}}}},
	}
	table := fig.Table()
	if table.Header[1] != "metric" {
		t.Fatalf("header = %v", table.Header)
	}
}

func TestTableRender(t *testing.T) {
	out := sampleFigure().Table().Render()
	if !strings.Contains(out, "figX") {
		t.Error("render missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("render produced %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "-") {
		t.Error("missing separator line")
	}
}

func TestTableWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleFigure().Table().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want 4", len(lines))
	}
	if lines[0] != "x,a,b" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "1,10,11" {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestTableWriteCSVQuoting(t *testing.T) {
	table := &Table{
		Header: []string{"name", "value"},
		Rows:   [][]string{{`has,comma`, `has"quote`}},
	}
	var sb strings.Builder
	if err := table.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `"has,comma"`) || !strings.Contains(got, `"has""quote"`) {
		t.Fatalf("csv quoting wrong: %q", got)
	}
}
