package eval

import (
	"fmt"
	"math"

	"pptd/internal/attack"
	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/truth"
)

// MethodsConfig parameterizes the method-comparison ablation: the same
// perturbed data aggregated by every truth-discovery method, across noise
// levels. This isolates the design choice the paper's mechanism leans on
// (weighted aggregation) against the unweighted baselines.
type MethodsConfig struct {
	// Source generates the original data per trial.
	Source Source
	// Methods are the algorithms to compare.
	Methods []truth.Method
	// NoiseTargets sweeps the average |noise| (x axis).
	NoiseTargets []float64
	// Trials averages each point.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c MethodsConfig) validate() error {
	switch {
	case c.Source.Generate == nil:
		return fmt.Errorf("%w: nil source", ErrBadConfig)
	case len(c.Methods) == 0:
		return fmt.Errorf("%w: no methods", ErrBadConfig)
	case len(c.NoiseTargets) == 0:
		return fmt.Errorf("%w: empty noise sweep", ErrBadConfig)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// MethodComparison measures, for each method and noise level, the MAE
// between the aggregate on perturbed data and the ground truth. One series
// per method.
func MethodComparison(cfg MethodsConfig) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-methods",
		Title:  fmt.Sprintf("ground-truth MAE by method on %s under increasing noise", cfg.Source.Name),
		XLabel: "average added noise",
		YLabel: "MAE vs ground truth",
	}
	root := randx.New(cfg.Seed)
	for _, method := range cfg.Methods {
		if method == nil {
			return nil, fmt.Errorf("%w: nil method", ErrBadConfig)
		}
		series := Series{Label: method.Name()}
		for _, target := range cfg.NoiseTargets {
			if target <= 0 || math.IsNaN(target) {
				return nil, fmt.Errorf("%w: noise target %v", ErrBadConfig, target)
			}
			lambda2 := 1 / (2 * target * target)
			mech, err := core.NewMechanism(lambda2)
			if err != nil {
				return nil, fmt.Errorf("eval: method comparison: %w", err)
			}
			var maeAcc stats.Welford
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := root.Split()
				ds, groundTruth, err := cfg.Source.Generate(rng)
				if err != nil {
					return nil, err
				}
				perturbed, _, err := mech.PerturbDataset(ds, rng)
				if err != nil {
					return nil, fmt.Errorf("eval: method comparison: %w", err)
				}
				res, err := method.Run(perturbed)
				if err != nil {
					return nil, fmt.Errorf("eval: method comparison (%s): %w", method.Name(), err)
				}
				mae, err := stats.MAE(res.Truths, groundTruth)
				if err != nil {
					return nil, fmt.Errorf("eval: method comparison: %w", err)
				}
				maeAcc.Add(mae)
			}
			series.Points = append(series.Points, Point{X: target, Y: maeAcc.Mean()})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// AttackConfig parameterizes the robustness ablation: adversarial users
// injected on top of the privacy perturbation.
type AttackConfig struct {
	// Source generates the original data per trial.
	Source Source
	// Methods are the algorithms to compare under attack.
	Methods []truth.Method
	// Adversaries are applied one at a time (one series per pair).
	Adversaries []attack.Adversary
	// Lambda2 fixes the privacy mechanism.
	Lambda2 float64
	// Trials averages each measurement.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c AttackConfig) validate() error {
	switch {
	case c.Source.Generate == nil:
		return fmt.Errorf("%w: nil source", ErrBadConfig)
	case len(c.Methods) == 0:
		return fmt.Errorf("%w: no methods", ErrBadConfig)
	case len(c.Adversaries) == 0:
		return fmt.Errorf("%w: no adversaries", ErrBadConfig)
	case c.Lambda2 <= 0 || math.IsNaN(c.Lambda2):
		return fmt.Errorf("%w: lambda2 = %v", ErrBadConfig, c.Lambda2)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// AttackComparison measures ground-truth MAE for each (method, adversary)
// pair with the privacy mechanism active: adversaries corrupt the
// original data, then honest perturbation is applied, then aggregation.
// The table's rows are adversaries (x = adversary index).
func AttackComparison(cfg AttackConfig) (*Figure, *Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	mech, err := core.NewMechanism(cfg.Lambda2)
	if err != nil {
		return nil, nil, fmt.Errorf("eval: attack comparison: %w", err)
	}
	fig := &Figure{
		ID:     "ablation-attack",
		Title:  fmt.Sprintf("ground-truth MAE under adversaries on %s (with perturbation)", cfg.Source.Name),
		XLabel: "adversary",
		YLabel: "MAE vs ground truth",
	}
	header := []string{"adversary"}
	for _, m := range cfg.Methods {
		header = append(header, m.Name())
	}
	table := &Table{Title: "MAE vs ground truth under attack", Header: header}

	root := randx.New(cfg.Seed)
	cells := make([][]float64, len(cfg.Adversaries))
	for ai := range cells {
		cells[ai] = make([]float64, len(cfg.Methods))
	}
	for mi, method := range cfg.Methods {
		series := Series{Label: method.Name()}
		for ai, adv := range cfg.Adversaries {
			var maeAcc stats.Welford
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := root.Split()
				ds, groundTruth, err := cfg.Source.Generate(rng)
				if err != nil {
					return nil, nil, err
				}
				corrupted, _, err := adv.Corrupt(ds, rng)
				if err != nil {
					return nil, nil, fmt.Errorf("eval: attack %s: %w", adv.Name(), err)
				}
				perturbed, _, err := mech.PerturbDataset(corrupted, rng)
				if err != nil {
					return nil, nil, fmt.Errorf("eval: attack comparison: %w", err)
				}
				res, err := method.Run(perturbed)
				if err != nil {
					return nil, nil, fmt.Errorf("eval: attack comparison (%s): %w", method.Name(), err)
				}
				mae, err := stats.MAE(res.Truths, groundTruth)
				if err != nil {
					return nil, nil, fmt.Errorf("eval: attack comparison: %w", err)
				}
				maeAcc.Add(mae)
			}
			cells[ai][mi] = maeAcc.Mean()
			series.Points = append(series.Points, Point{X: float64(ai + 1), Y: maeAcc.Mean()})
		}
		fig.Series = append(fig.Series, series)
	}
	for ai, adv := range cfg.Adversaries {
		row := []string{adv.Name()}
		for mi := range cfg.Methods {
			row = append(row, formatFloat(cells[ai][mi]))
		}
		table.Rows = append(table.Rows, row)
	}
	return fig, table, nil
}
