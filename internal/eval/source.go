package eval

import (
	"fmt"

	"pptd/internal/floorplan"
	"pptd/internal/randx"
	"pptd/internal/synthetic"
	"pptd/internal/truth"
)

// Source generates fresh original datasets for an experiment trial.
type Source struct {
	// Name labels the data source in reports.
	Name string
	// Generate draws a dataset and its ground truth using rng.
	Generate func(rng *randx.RNG) (*truth.Dataset, []float64, error)
}

// SyntheticSource wraps the Section 5.1 generator as a Source.
func SyntheticSource(cfg synthetic.Config) Source {
	return Source{
		Name: "synthetic",
		Generate: func(rng *randx.RNG) (*truth.Dataset, []float64, error) {
			inst, err := synthetic.Generate(cfg, rng)
			if err != nil {
				return nil, nil, fmt.Errorf("eval: synthetic source: %w", err)
			}
			return inst.Dataset, inst.GroundTruth, nil
		},
	}
}

// FloorplanSource wraps the Section 5.2 indoor-floorplan simulator as a
// Source.
func FloorplanSource(cfg floorplan.Config) Source {
	return Source{
		Name: "floorplan",
		Generate: func(rng *randx.RNG) (*truth.Dataset, []float64, error) {
			inst, err := floorplan.Generate(cfg, rng)
			if err != nil {
				return nil, nil, fmt.Errorf("eval: floorplan source: %w", err)
			}
			return inst.Dataset, inst.SegmentLengths, nil
		},
	}
}
