package eval

import (
	"fmt"
	"time"

	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/secagg"
	"pptd/internal/stats"
	"pptd/internal/synthetic"
	"pptd/internal/truth"
)

// CostConfig parameterizes the deployment-cost comparison between the
// paper's perturbation mechanism and a secure-aggregation baseline (the
// class of crypto alternative the paper's introduction argues is too
// expensive for crowd sensing scale).
type CostConfig struct {
	// UserCounts sweeps the crowd size.
	UserCounts []int
	// NumObjects fixes the task size.
	NumObjects int
	// Lambda1 fixes the data quality; Lambda2 the mechanism.
	Lambda1, Lambda2 float64
	// Trials averages the timing measurements.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c CostConfig) validate() error {
	switch {
	case len(c.UserCounts) == 0:
		return fmt.Errorf("%w: empty user sweep", ErrBadConfig)
	case c.NumObjects <= 0:
		return fmt.Errorf("%w: NumObjects = %d", ErrBadConfig, c.NumObjects)
	case c.Lambda1 <= 0:
		return fmt.Errorf("%w: lambda1 = %v", ErrBadConfig, c.Lambda1)
	case c.Lambda2 <= 0:
		return fmt.Errorf("%w: lambda2 = %v", ErrBadConfig, c.Lambda2)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// CostResult holds the comparison outputs.
type CostResult struct {
	// Bytes plots total communication (KiB, log-friendly) vs S for both
	// approaches.
	Bytes *Figure
	// Wall plots end-to-end wall time (ms) vs S for both approaches.
	Wall *Figure
	// Table summarizes one row per crowd size.
	Table *Table
}

// CostComparison measures, for each crowd size: (a) the paper's
// mechanism — one perturbed upload per user, then plain CRH at the
// server; (b) pairwise-masking secure aggregation running the same CRH
// iteration under masked sums. Both produce comparable aggregates; the
// resource gap is the experiment's point.
func CostComparison(cfg CostConfig) (*CostResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mech, err := core.NewMechanism(cfg.Lambda2)
	if err != nil {
		return nil, fmt.Errorf("eval: cost comparison: %w", err)
	}
	crh, err := truth.NewCRH(truth.WithCRHDistance(truth.SquaredDistance))
	if err != nil {
		return nil, fmt.Errorf("eval: cost comparison: %w", err)
	}

	bytesFig := &Figure{
		ID:     "ablation-cost-bytes",
		Title:  "total communication: perturbation mechanism vs secure aggregation",
		XLabel: "S",
		YLabel: "KiB",
	}
	wallFig := &Figure{
		ID:     "ablation-cost-wall",
		Title:  "end-to-end wall time: perturbation mechanism vs secure aggregation",
		XLabel: "S",
		YLabel: "ms",
	}
	perturbBytes := Series{Label: "perturbation"}
	secureBytes := Series{Label: "secure-agg"}
	perturbWall := Series{Label: "perturbation"}
	secureWall := Series{Label: "secure-agg"}
	table := &Table{
		Title: "deployment cost per approach",
		Header: []string{
			"S", "approach", "setup B/user", "data B/user", "rounds", "total KiB", "wall ms",
		},
	}

	root := randx.New(cfg.Seed)
	for _, s := range cfg.UserCounts {
		if s < 2 {
			return nil, fmt.Errorf("%w: user count %d", ErrBadConfig, s)
		}
		gen := synthetic.Config{
			NumUsers:    s,
			NumObjects:  cfg.NumObjects,
			Lambda1:     cfg.Lambda1,
			TruthLow:    0,
			TruthHigh:   10,
			ObserveProb: 1,
		}

		var perturbMs, secureMs stats.Welford
		var secureCost secagg.Cost
		var secureRounds int
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := root.Split()
			inst, err := synthetic.Generate(gen, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: cost comparison: %w", err)
			}

			start := time.Now()
			perturbed, _, err := mech.PerturbDataset(inst.Dataset, rng.Split())
			if err != nil {
				return nil, fmt.Errorf("eval: cost comparison: %w", err)
			}
			if _, err := crh.Run(perturbed); err != nil {
				return nil, fmt.Errorf("eval: cost comparison: %w", err)
			}
			perturbMs.Add(float64(time.Since(start).Microseconds()) / 1000)

			start = time.Now()
			res, cost, err := secagg.SecureCRH(inst.Dataset, truth.DefaultMaxIterations, truth.DefaultTolerance, rng.Split())
			if err != nil {
				return nil, fmt.Errorf("eval: cost comparison: %w", err)
			}
			secureMs.Add(float64(time.Since(start).Microseconds()) / 1000)
			secureCost = cost
			secureRounds = res.Iterations
		}

		pCost := secagg.PerturbationCost(s, cfg.NumObjects)
		x := float64(s)
		perturbBytes.Points = append(perturbBytes.Points, Point{X: x, Y: float64(pCost.TotalBytes) / 1024})
		secureBytes.Points = append(secureBytes.Points, Point{X: x, Y: float64(secureCost.TotalBytes) / 1024})
		perturbWall.Points = append(perturbWall.Points, Point{X: x, Y: perturbMs.Mean()})
		secureWall.Points = append(secureWall.Points, Point{X: x, Y: secureMs.Mean()})

		table.Rows = append(table.Rows,
			[]string{
				fmt.Sprintf("%d", s), "perturbation",
				fmt.Sprintf("%d", pCost.SetupBytesPerUser),
				fmt.Sprintf("%d", pCost.BytesPerUserPerRound),
				fmt.Sprintf("%d", pCost.Rounds),
				fmt.Sprintf("%.1f", float64(pCost.TotalBytes)/1024),
				fmt.Sprintf("%.2f", perturbMs.Mean()),
			},
			[]string{
				fmt.Sprintf("%d", s), "secure-agg",
				fmt.Sprintf("%d", secureCost.SetupBytesPerUser),
				fmt.Sprintf("%d", secureCost.BytesPerUserPerRound),
				fmt.Sprintf("%d", secureRounds),
				fmt.Sprintf("%.1f", float64(secureCost.TotalBytes)/1024),
				fmt.Sprintf("%.2f", secureMs.Mean()),
			},
		)
	}
	bytesFig.Series = []Series{perturbBytes, secureBytes}
	wallFig.Series = []Series{perturbWall, secureWall}
	return &CostResult{Bytes: bytesFig, Wall: wallFig, Table: table}, nil
}
