package eval

import (
	"fmt"
	"math"

	"pptd/internal/categorical"
	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/synthetic"
	"pptd/internal/theory"
	"pptd/internal/truth"
)

// TheoremA1Config parameterizes the empirical validation of Theorem A.1:
// at noise level c = 1 (lambda2 = lambda1), the probability that the
// aggregate shift exceeds alpha vanishes as 1/S^2.
type TheoremA1Config struct {
	// UserCounts sweeps S (x axis).
	UserCounts []int
	// Lambda1 fixes the data quality; the mechanism uses lambda2 =
	// lambda1 so that c = 1.
	Lambda1 float64
	// Alpha is the aggregate-shift threshold. It must exceed
	// 2*sqrt(2/pi)*E(Y) for the theorem's bound to be non-vacuous.
	Alpha float64
	// NumObjects shapes the synthetic crowd.
	NumObjects int
	// Trials estimates the tail probability per point.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c TheoremA1Config) validate() error {
	switch {
	case len(c.UserCounts) == 0:
		return fmt.Errorf("%w: empty user sweep", ErrBadConfig)
	case c.Lambda1 <= 0 || math.IsNaN(c.Lambda1):
		return fmt.Errorf("%w: lambda1 = %v", ErrBadConfig, c.Lambda1)
	case c.Alpha <= 0 || math.IsNaN(c.Alpha):
		return fmt.Errorf("%w: alpha = %v", ErrBadConfig, c.Alpha)
	case c.NumObjects <= 0:
		return fmt.Errorf("%w: NumObjects = %d", ErrBadConfig, c.NumObjects)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// TheoremA1 measures Pr{ MAE(A(D), A(M(D))) >= alpha } empirically at
// c = 1 for each S and overlays the analytic Chebyshev bound of
// Theorem A.1. The validated claim is domination: empirical <= bound,
// with both vanishing as S grows.
func TheoremA1(cfg TheoremA1Config) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	method, err := truth.NewCRH()
	if err != nil {
		return nil, fmt.Errorf("eval: thmA1: %w", err)
	}
	mech, err := core.NewMechanism(cfg.Lambda1) // lambda2 = lambda1 <=> c = 1
	if err != nil {
		return nil, fmt.Errorf("eval: thmA1: %w", err)
	}
	pipe, err := core.NewPipeline(mech, method)
	if err != nil {
		return nil, fmt.Errorf("eval: thmA1: %w", err)
	}

	fig := &Figure{
		ID:     "thmA1",
		Title:  fmt.Sprintf("Theorem A.1 at c=1: Pr{aggregate shift >= %.3g} vs S", cfg.Alpha),
		XLabel: "S",
		YLabel: "probability",
	}
	empirical := Series{Label: "empirical"}
	analytic := Series{Label: "bound"}

	root := randx.New(cfg.Seed)
	for _, s := range cfg.UserCounts {
		if s <= 0 {
			return nil, fmt.Errorf("%w: user count %d", ErrBadConfig, s)
		}
		gen := synthetic.Config{
			NumUsers:    s,
			NumObjects:  cfg.NumObjects,
			Lambda1:     cfg.Lambda1,
			TruthLow:    0,
			TruthHigh:   10,
			ObserveProb: 1,
		}
		exceed := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := root.Split()
			inst, err := synthetic.Generate(gen, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: thmA1: %w", err)
			}
			out, err := pipe.Run(inst.Dataset, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: thmA1: %w", err)
			}
			if out.UtilityMAE >= cfg.Alpha {
				exceed++
			}
		}
		bound, err := theory.UtilityProbBoundEqualOne(cfg.Lambda1, cfg.Alpha, s)
		if err != nil {
			return nil, fmt.Errorf("eval: thmA1: %w", err)
		}
		empirical.Points = append(empirical.Points, Point{X: float64(s), Y: float64(exceed) / float64(cfg.Trials)})
		analytic.Points = append(analytic.Points, Point{X: float64(s), Y: bound})
	}
	fig.Series = []Series{empirical, analytic}
	return fig, nil
}

// CategoricalConfig parameterizes the categorical extension experiment:
// discovery accuracy under k-ary randomized response, weighted voting
// versus plain majority.
type CategoricalConfig struct {
	// Epsilons sweeps the randomized-response privacy level (x axis).
	Epsilons []float64
	// NumUsers, NumObjects, NumCategories shape the crowd.
	NumUsers, NumObjects, NumCategories int
	// MinCorrect and MaxCorrect bound the per-user probability of
	// answering correctly (quality spread).
	MinCorrect, MaxCorrect float64
	// Trials averages each point.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c CategoricalConfig) validate() error {
	switch {
	case len(c.Epsilons) == 0:
		return fmt.Errorf("%w: empty epsilon sweep", ErrBadConfig)
	case c.NumUsers <= 0 || c.NumObjects <= 0:
		return fmt.Errorf("%w: crowd %dx%d", ErrBadConfig, c.NumUsers, c.NumObjects)
	case c.NumCategories < 2:
		return fmt.Errorf("%w: %d categories", ErrBadConfig, c.NumCategories)
	case c.MinCorrect <= 0 || c.MaxCorrect > 1 || c.MinCorrect > c.MaxCorrect:
		return fmt.Errorf("%w: correctness range [%v, %v]", ErrBadConfig, c.MinCorrect, c.MaxCorrect)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// Categorical runs the categorical-extension experiment: generate a
// crowd with a quality spread, randomize every claim with k-RR at each
// epsilon, and measure discovery accuracy for weighted voting and
// majority voting.
func Categorical(cfg CategoricalConfig) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	weighted, err := categorical.NewVoting()
	if err != nil {
		return nil, fmt.Errorf("eval: categorical: %w", err)
	}
	majority, err := categorical.NewVoting(categorical.WithUnweightedVoting())
	if err != nil {
		return nil, fmt.Errorf("eval: categorical: %w", err)
	}

	fig := &Figure{
		ID:     "ext-categorical",
		Title:  fmt.Sprintf("categorical extension: accuracy under %d-ary randomized response", cfg.NumCategories),
		XLabel: "epsilon",
		YLabel: "accuracy",
	}
	methods := []*categorical.Voting{weighted, majority}
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i] = Series{Label: m.Name()}
	}

	root := randx.New(cfg.Seed)
	for _, eps := range cfg.Epsilons {
		rr, err := categorical.NewRandomizedResponse(eps, cfg.NumCategories)
		if err != nil {
			return nil, fmt.Errorf("eval: categorical at eps=%v: %w", eps, err)
		}
		accs := make([]stats.Welford, len(methods))
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := root.Split()
			ds, truths, err := genCategoricalCrowd(cfg, rng)
			if err != nil {
				return nil, err
			}
			noisy, err := rr.PerturbDataset(ds, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: categorical: %w", err)
			}
			for i, m := range methods {
				res, err := m.Run(noisy)
				if err != nil {
					return nil, fmt.Errorf("eval: categorical (%s): %w", m.Name(), err)
				}
				acc, err := categorical.Accuracy(res.Truths, truths)
				if err != nil {
					return nil, fmt.Errorf("eval: categorical: %w", err)
				}
				accs[i].Add(acc)
			}
		}
		for i := range methods {
			series[i].Points = append(series[i].Points, Point{X: eps, Y: accs[i].Mean()})
		}
	}
	fig.Series = series
	return fig, nil
}

// genCategoricalCrowd draws one categorical crowd: truths uniform over
// categories, each user correct with a per-user probability drawn from
// [MinCorrect, MaxCorrect], wrong answers uniform over the rest.
func genCategoricalCrowd(cfg CategoricalConfig, rng *randx.RNG) (*categorical.Dataset, []int, error) {
	truths := make([]int, cfg.NumObjects)
	for n := range truths {
		truths[n] = rng.Intn(cfg.NumCategories)
	}
	b := categorical.NewBuilder(cfg.NumUsers, cfg.NumObjects, cfg.NumCategories)
	for s := 0; s < cfg.NumUsers; s++ {
		correct := cfg.MinCorrect + (cfg.MaxCorrect-cfg.MinCorrect)*rng.Float64()
		for n, tv := range truths {
			cat := tv
			if rng.Float64() >= correct {
				cat = rng.Intn(cfg.NumCategories - 1)
				if cat >= tv {
					cat++
				}
			}
			b.Add(s, n, cat)
		}
	}
	ds, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("eval: categorical crowd: %w", err)
	}
	return ds, truths, nil
}
