package eval

import (
	"errors"
	"testing"
)

func TestStreamingValidation(t *testing.T) {
	base := StreamingConfig{
		NumUsers: 10, NumObjects: 5, NumWindows: 2,
		Drift: 0.1, Decay: 0.5,
		Lambda1: 1, Lambda2: 2, Delta: 0.3,
		Trials: 1, Seed: 1,
	}
	mutations := []func(*StreamingConfig){
		func(c *StreamingConfig) { c.NumUsers = 0 },
		func(c *StreamingConfig) { c.NumObjects = -1 },
		func(c *StreamingConfig) { c.NumWindows = 0 },
		func(c *StreamingConfig) { c.Decay = 0 },
		func(c *StreamingConfig) { c.Decay = 1.1 },
		func(c *StreamingConfig) { c.Lambda1 = 0 },
		func(c *StreamingConfig) { c.Lambda2 = -2 },
		func(c *StreamingConfig) { c.Delta = 1 },
		func(c *StreamingConfig) { c.Trials = 0 },
		func(c *StreamingConfig) { c.Drift = -1 },
		func(c *StreamingConfig) { c.Estimator = "kalman" },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := Streaming(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("mutation %d accepted: %+v", i, cfg)
		}
	}
}

// TestStreamingShapes checks the scenario's output structure and the
// qualitative expectations: every window measured, epsilon composing
// linearly across windows.
func TestStreamingShapes(t *testing.T) {
	const windows = 3
	res, err := Streaming(StreamingConfig{
		NumUsers:   30,
		NumObjects: 8,
		NumWindows: windows,
		Drift:      0.5,
		Decay:      0.5,
		Lambda1:    1,
		Lambda2:    2,
		Delta:      0.3,
		Trials:     2,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MAE.Series) != 3 {
		t.Fatalf("MAE series = %d, want 3", len(res.MAE.Series))
	}
	for _, s := range res.MAE.Series {
		if len(s.Points) != windows {
			t.Fatalf("series %q has %d points, want %d", s.Label, len(s.Points), windows)
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y != p.Y {
				t.Errorf("series %q: bad MAE %v at window %v", s.Label, p.Y, p.X)
			}
		}
	}
	eps := res.Epsilon.Series[0].Points
	if len(eps) != windows {
		t.Fatalf("epsilon points = %d, want %d", len(eps), windows)
	}
	perWindow := eps[0].Y
	if perWindow <= 0 {
		t.Fatalf("per-window epsilon = %v, want > 0", perWindow)
	}
	for w, p := range eps {
		want := float64(w+1) * perWindow
		if diff := p.Y - want; diff > 1e-6*want || diff < -1e-6*want {
			t.Errorf("window %d: cumulative epsilon %v, want %v (linear composition)", w+1, p.Y, want)
		}
	}
}

// TestStreamingEstimators runs the scenario once per streaming
// estimator: each must produce full figures with finite MAE (the
// comparator batch run uses the matching method).
func TestStreamingEstimators(t *testing.T) {
	for _, est := range []string{"crh", "gtm", "catd"} {
		est := est
		t.Run(est, func(t *testing.T) {
			res, err := Streaming(StreamingConfig{
				NumUsers:   20,
				NumObjects: 6,
				NumWindows: 2,
				Drift:      0.3,
				Decay:      0.5,
				Lambda1:    1,
				Lambda2:    2,
				Delta:      0.3,
				Trials:     1,
				Seed:       4,
				Estimator:  est,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range res.MAE.Series {
				for _, p := range s.Points {
					if p.Y != p.Y || p.Y < 0 {
						t.Fatalf("series %q has bad MAE %v", s.Label, p.Y)
					}
				}
			}
		})
	}
}
