// Package eval is the experiment harness that regenerates every figure of
// the paper's evaluation (Section 5): the utility-privacy trade-off on
// synthetic data with CRH (Fig. 2) and GTM (Fig. 5), the effect of the
// data-quality parameter lambda1 (Fig. 3) and of the number of users S
// (Fig. 4), the trade-off on the indoor-floorplan system (Fig. 6), the
// true-versus-estimated weight comparison (Fig. 7), and the efficiency
// study (Fig. 8), plus ablations beyond the paper. Each experiment
// produces Figure values renderable as aligned text tables or CSV.
package eval

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrBadConfig reports an invalid experiment configuration.
var ErrBadConfig = errors.New("eval: invalid config")

// Point is one (x, y) measurement.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	// Label names the curve (e.g. "delta=0.2").
	Label string
	// Points are the measurements in x order.
	Points []Point
}

// Figure is one reproduced plot: an identifier tying it to the paper,
// axis labels, and one or more series.
type Figure struct {
	// ID names the paper artifact, e.g. "fig2a".
	ID string
	// Title describes the plot.
	Title string
	// XLabel and YLabel name the axes.
	XLabel string
	YLabel string
	// Series holds the curves.
	Series []Series
}

// Table renders the figure as rows of x followed by one column per series.
// Series are aligned on their x values; a series missing an x gets an
// empty cell.
func (f *Figure) Table() *Table {
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		label := s.Label
		if label == "" {
			label = f.YLabel
		}
		header = append(header, label)
	}

	// Collect the sorted union of x values, preserving first-seen order
	// (series are generated in x order).
	var xs []float64
	seen := make(map[float64]int)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, ok := seen[p.X]; !ok {
				seen[p.X] = len(xs)
				xs = append(xs, p.X)
			}
		}
	}

	rows := make([][]string, len(xs))
	for i, x := range xs {
		row := make([]string, len(f.Series)+1)
		row[0] = formatFloat(x)
		rows[i] = row
	}
	for si, s := range f.Series {
		for _, p := range s.Points {
			rows[seen[p.X]][si+1] = formatFloat(p.Y)
		}
	}
	return &Table{
		Title:  fmt.Sprintf("%s — %s", f.ID, f.Title),
		Header: header,
		Rows:   rows,
	}
}

// Table is an aligned text table with a title.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV writes the table as CSV (header first, no title row).
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(t.Header); err != nil {
		return fmt.Errorf("eval: write csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return fmt.Errorf("eval: write csv row: %w", err)
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
