package eval

import (
	"fmt"
	"math"
	"sort"

	"pptd/internal/core"
	"pptd/internal/floorplan"
	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/truth"
)

// WeightsConfig parameterizes the Fig. 7 experiment: true versus estimated
// user weights on the indoor-floorplan data, before and after
// perturbation.
type WeightsConfig struct {
	// Floorplan shapes the simulated deployment.
	Floorplan floorplan.Config
	// Lambda2 fixes the mechanism.
	Lambda2 float64
	// NumShownUsers is how many users the figure displays (paper: 7).
	NumShownUsers int
	// Seed derives all randomness.
	Seed uint64
}

func (c WeightsConfig) validate() error {
	switch {
	case c.Lambda2 <= 0 || math.IsNaN(c.Lambda2):
		return fmt.Errorf("%w: lambda2 = %v", ErrBadConfig, c.Lambda2)
	case c.NumShownUsers <= 0:
		return fmt.Errorf("%w: NumShownUsers = %d", ErrBadConfig, c.NumShownUsers)
	}
	return nil
}

// WeightsResult holds the Fig. 7 panels plus the summary correlations.
type WeightsResult struct {
	// Original is panel (a): true and estimated weights on original data.
	Original *Figure
	// Perturbed is panel (b): the same on perturbed data.
	Perturbed *Figure
	// CorrOriginal and CorrPerturbed are the Pearson correlations between
	// true and estimated weights over all users (not just the shown ones).
	CorrOriginal  float64
	CorrPerturbed float64
	// NoisiestUser is the user who sampled the largest noise variance;
	// the paper's Fig. 7 narrative is that such a user's weight drops on
	// perturbed data.
	NoisiestUser int
	// NoisiestVariance is that user's sampled delta_s^2.
	NoisiestVariance float64
	// NoisiestWeightBefore and NoisiestWeightAfter are that user's
	// normalized estimated weights on original and perturbed data.
	NoisiestWeightBefore float64
	NoisiestWeightAfter  float64
}

// Weights runs the Fig. 7 experiment. "True" weights apply the CRH weight
// equation against the ground-truth segment lengths; "estimated" weights
// are what CRH infers without ground truth. Weights are normalized to
// mean 1 for comparability. The displayed users are an even quality
// spread (the paper picks 7 random users; a spread is more informative
// and deterministic).
func Weights(cfg WeightsConfig) (*WeightsResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed)
	inst, err := floorplan.Generate(cfg.Floorplan, rng)
	if err != nil {
		return nil, fmt.Errorf("eval: weights: %w", err)
	}
	mech, err := core.NewMechanism(cfg.Lambda2)
	if err != nil {
		return nil, fmt.Errorf("eval: weights: %w", err)
	}
	perturbed, report, err := mech.PerturbDataset(inst.Dataset, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("eval: weights: %w", err)
	}
	noisiest := 0
	for s, v := range report.UserVariances {
		if v > report.UserVariances[noisiest] {
			noisiest = s
		}
	}

	crh, err := truth.NewCRH()
	if err != nil {
		return nil, fmt.Errorf("eval: weights: %w", err)
	}
	estOrig, err := crh.Run(inst.Dataset)
	if err != nil {
		return nil, fmt.Errorf("eval: weights on original: %w", err)
	}
	estPert, err := crh.Run(perturbed)
	if err != nil {
		return nil, fmt.Errorf("eval: weights on perturbed: %w", err)
	}
	trueOrig, err := truth.WeightsAgainst(inst.Dataset, inst.SegmentLengths, truth.NormalizedSquaredDistance)
	if err != nil {
		return nil, fmt.Errorf("eval: true weights on original: %w", err)
	}
	truePert, err := truth.WeightsAgainst(perturbed, inst.SegmentLengths, truth.NormalizedSquaredDistance)
	if err != nil {
		return nil, fmt.Errorf("eval: true weights on perturbed: %w", err)
	}
	for _, ws := range [][]float64{estOrig.Weights, estPert.Weights, trueOrig, truePert} {
		truth.NormalizeWeights(ws)
	}

	corrOrig, err := stats.Pearson(trueOrig, estOrig.Weights)
	if err != nil {
		return nil, fmt.Errorf("eval: weight correlation (original): %w", err)
	}
	corrPert, err := stats.Pearson(truePert, estPert.Weights)
	if err != nil {
		return nil, fmt.Errorf("eval: weight correlation (perturbed): %w", err)
	}

	shown := pickSpread(inst.UserBiasStds, cfg.NumShownUsers)
	mkFigure := func(id, title string, trueW, estW []float64) *Figure {
		fig := &Figure{
			ID:     id,
			Title:  title,
			XLabel: "user",
			YLabel: "weight",
		}
		tw := Series{Label: "true weight"}
		ew := Series{Label: "estimated weight"}
		for rank, s := range shown {
			x := float64(rank + 1)
			tw.Points = append(tw.Points, Point{X: x, Y: trueW[s]})
			ew.Points = append(ew.Points, Point{X: x, Y: estW[s]})
		}
		fig.Series = []Series{tw, ew}
		return fig
	}
	return &WeightsResult{
		Original:             mkFigure("fig7a", "weight comparison on original data", trueOrig, estOrig.Weights),
		Perturbed:            mkFigure("fig7b", "weight comparison on perturbed data", truePert, estPert.Weights),
		CorrOriginal:         corrOrig,
		CorrPerturbed:        corrPert,
		NoisiestUser:         noisiest,
		NoisiestVariance:     report.UserVariances[noisiest],
		NoisiestWeightBefore: estOrig.Weights[noisiest],
		NoisiestWeightAfter:  estPert.Weights[noisiest],
	}, nil
}

// pickSpread returns k user indices evenly spread across the quality
// ordering (best to worst by the latent quality value, ascending = better).
func pickSpread(quality []float64, k int) []int {
	idx := make([]int, len(quality))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return quality[idx[a]] < quality[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]int, 0, k)
	if k == 1 {
		return []int{idx[0]}
	}
	step := float64(len(idx)-1) / float64(k-1)
	for i := 0; i < k; i++ {
		out = append(out, idx[int(math.Round(float64(i)*step))])
	}
	return out
}
