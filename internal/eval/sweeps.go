package eval

import (
	"fmt"
	"math"

	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/synthetic"
	"pptd/internal/theory"
	"pptd/internal/truth"
)

// Lambda1Config parameterizes the Fig. 3 experiment: the effect of the
// error-distribution parameter lambda1 on both utility and required noise
// at a fixed privacy target.
type Lambda1Config struct {
	// Lambda1s is the sweep over data quality (x axis).
	Lambda1s []float64
	// Epsilon and Delta fix the privacy target.
	Epsilon, Delta float64
	// NumUsers and NumObjects shape the synthetic crowd.
	NumUsers, NumObjects int
	// Method aggregates the data.
	Method truth.Method
	// Trials averages each point.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c Lambda1Config) validate() error {
	switch {
	case len(c.Lambda1s) == 0:
		return fmt.Errorf("%w: empty lambda1 sweep", ErrBadConfig)
	case c.Epsilon <= 0 || math.IsNaN(c.Epsilon):
		return fmt.Errorf("%w: epsilon = %v", ErrBadConfig, c.Epsilon)
	case c.Delta <= 0 || c.Delta >= 1 || math.IsNaN(c.Delta):
		return fmt.Errorf("%w: delta = %v", ErrBadConfig, c.Delta)
	case c.NumUsers <= 0 || c.NumObjects <= 0:
		return fmt.Errorf("%w: crowd %dx%d", ErrBadConfig, c.NumUsers, c.NumObjects)
	case c.Method == nil:
		return fmt.Errorf("%w: nil method", ErrBadConfig)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// DefaultLambda1s is the Fig. 3 sweep over (0, 10].
func DefaultLambda1s() []float64 {
	return []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
}

// SweepResult holds the two panels of a parameter-sweep figure.
type SweepResult struct {
	// MAE is panel (a).
	MAE *Figure
	// Noise is panel (b).
	Noise *Figure
}

// Lambda1Effect runs the Fig. 3 experiment: for each lambda1 it generates
// a crowd of that quality, derives the noise level meeting the fixed
// (epsilon, delta) target — which shrinks as lambda1 grows, per
// Theorem 4.8 — and measures utility loss and injected noise.
func Lambda1Effect(cfg Lambda1Config) (*SweepResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gamma, err := theory.Gamma(ExperimentB, ExperimentEta)
	if err != nil {
		return nil, fmt.Errorf("eval: lambda1 effect: %w", err)
	}

	maeFig := &Figure{
		ID:     "fig3a",
		Title:  "effect of lambda1 (error distribution in original data): MAE",
		XLabel: "lambda1",
		YLabel: "MAE",
	}
	noiseFig := &Figure{
		ID:     "fig3b",
		Title:  "effect of lambda1: average added noise",
		XLabel: "lambda1",
		YLabel: "average added noise",
	}
	maeSeries := Series{Label: "MAE"}
	noiseSeries := Series{Label: "noise"}

	root := randx.New(cfg.Seed)
	for _, lambda1 := range cfg.Lambda1s {
		c, err := theory.NoiseLevelForEpsilon(cfg.Epsilon, cfg.Delta, lambda1, gamma)
		if err != nil {
			return nil, fmt.Errorf("eval: lambda1 = %v: %w", lambda1, err)
		}
		lambda2, err := theory.Lambda2ForNoiseLevel(c, lambda1)
		if err != nil {
			return nil, fmt.Errorf("eval: lambda1 = %v: %w", lambda1, err)
		}
		mech, err := core.NewMechanism(lambda2)
		if err != nil {
			return nil, fmt.Errorf("eval: lambda1 = %v: %w", lambda1, err)
		}
		pipe, err := core.NewPipeline(mech, cfg.Method)
		if err != nil {
			return nil, fmt.Errorf("eval: lambda1 effect: %w", err)
		}
		gen := synthetic.Config{
			NumUsers:    cfg.NumUsers,
			NumObjects:  cfg.NumObjects,
			Lambda1:     lambda1,
			TruthLow:    0,
			TruthHigh:   10,
			ObserveProb: 1,
		}

		var maeAcc, noiseAcc stats.Welford
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := root.Split()
			inst, err := synthetic.Generate(gen, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: lambda1 effect: %w", err)
			}
			out, err := pipe.Run(inst.Dataset, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: lambda1 effect: %w", err)
			}
			maeAcc.Add(out.UtilityMAE)
			noiseAcc.Add(out.Noise.MeanAbsNoise)
		}
		maeSeries.Points = append(maeSeries.Points, Point{X: lambda1, Y: maeAcc.Mean()})
		noiseSeries.Points = append(noiseSeries.Points, Point{X: lambda1, Y: noiseAcc.Mean()})
	}
	maeFig.Series = []Series{maeSeries}
	noiseFig.Series = []Series{noiseSeries}
	return &SweepResult{MAE: maeFig, Noise: noiseFig}, nil
}

// UsersConfig parameterizes the Fig. 4 experiment: the effect of the
// number of users S under a fixed mechanism.
type UsersConfig struct {
	// UserCounts is the sweep over S (x axis).
	UserCounts []int
	// Lambda1 fixes the data quality and Lambda2 the mechanism; the
	// paper keeps the mechanism fixed while S varies, so the average
	// noise stays flat.
	Lambda1, Lambda2 float64
	// NumObjects shapes the synthetic crowd.
	NumObjects int
	// Method aggregates the data.
	Method truth.Method
	// Trials averages each point.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c UsersConfig) validate() error {
	switch {
	case len(c.UserCounts) == 0:
		return fmt.Errorf("%w: empty user sweep", ErrBadConfig)
	case c.Lambda1 <= 0 || math.IsNaN(c.Lambda1):
		return fmt.Errorf("%w: lambda1 = %v", ErrBadConfig, c.Lambda1)
	case c.Lambda2 <= 0 || math.IsNaN(c.Lambda2):
		return fmt.Errorf("%w: lambda2 = %v", ErrBadConfig, c.Lambda2)
	case c.NumObjects <= 0:
		return fmt.Errorf("%w: NumObjects = %d", ErrBadConfig, c.NumObjects)
	case c.Method == nil:
		return fmt.Errorf("%w: nil method", ErrBadConfig)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// DefaultUserCounts is the Fig. 4 sweep.
func DefaultUserCounts() []int { return []int{100, 200, 300, 400, 500, 600} }

// UsersEffect runs the Fig. 4 experiment: sweep S with the mechanism held
// fixed. The injected noise is S-independent (users act independently);
// utility improves with S because weight estimation sharpens.
func UsersEffect(cfg UsersConfig) (*SweepResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mech, err := core.NewMechanism(cfg.Lambda2)
	if err != nil {
		return nil, fmt.Errorf("eval: users effect: %w", err)
	}
	pipe, err := core.NewPipeline(mech, cfg.Method)
	if err != nil {
		return nil, fmt.Errorf("eval: users effect: %w", err)
	}

	maeFig := &Figure{
		ID:     "fig4a",
		Title:  "effect of S (number of users): MAE",
		XLabel: "S",
		YLabel: "MAE",
	}
	noiseFig := &Figure{
		ID:     "fig4b",
		Title:  "effect of S: average added noise",
		XLabel: "S",
		YLabel: "average added noise",
	}
	maeSeries := Series{Label: "MAE"}
	noiseSeries := Series{Label: "noise"}

	root := randx.New(cfg.Seed)
	for _, s := range cfg.UserCounts {
		if s <= 0 {
			return nil, fmt.Errorf("%w: user count %d", ErrBadConfig, s)
		}
		gen := synthetic.Config{
			NumUsers:    s,
			NumObjects:  cfg.NumObjects,
			Lambda1:     cfg.Lambda1,
			TruthLow:    0,
			TruthHigh:   10,
			ObserveProb: 1,
		}
		var maeAcc, noiseAcc stats.Welford
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := root.Split()
			inst, err := synthetic.Generate(gen, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: users effect: %w", err)
			}
			out, err := pipe.Run(inst.Dataset, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: users effect: %w", err)
			}
			maeAcc.Add(out.UtilityMAE)
			noiseAcc.Add(out.Noise.MeanAbsNoise)
		}
		maeSeries.Points = append(maeSeries.Points, Point{X: float64(s), Y: maeAcc.Mean()})
		noiseSeries.Points = append(noiseSeries.Points, Point{X: float64(s), Y: noiseAcc.Mean()})
	}
	maeFig.Series = []Series{maeSeries}
	noiseFig.Series = []Series{noiseSeries}
	return &SweepResult{MAE: maeFig, Noise: noiseFig}, nil
}
