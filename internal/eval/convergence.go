package eval

import (
	"fmt"
	"math"
	"time"

	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/synthetic"
	"pptd/internal/truth"
)

// ConvergenceConfig parameterizes the convergence-criterion ablation:
// Section 5.3 notes that truth discovery's running time is controlled by
// the iteration count, which the convergence threshold sets. This
// experiment sweeps the threshold and reports iterations, wall time and
// accuracy, on both original and perturbed data.
type ConvergenceConfig struct {
	// Tolerances sweeps the convergence threshold (x axis, log scale).
	Tolerances []float64
	// NumUsers and NumObjects shape the synthetic crowd.
	NumUsers, NumObjects int
	// Lambda1 fixes data quality; Lambda2 the mechanism.
	Lambda1, Lambda2 float64
	// Trials averages each point.
	Trials int
	// Seed derives all randomness.
	Seed uint64
}

func (c ConvergenceConfig) validate() error {
	switch {
	case len(c.Tolerances) == 0:
		return fmt.Errorf("%w: empty tolerance sweep", ErrBadConfig)
	case c.NumUsers <= 0 || c.NumObjects <= 0:
		return fmt.Errorf("%w: crowd %dx%d", ErrBadConfig, c.NumUsers, c.NumObjects)
	case c.Lambda1 <= 0 || math.IsNaN(c.Lambda1):
		return fmt.Errorf("%w: lambda1 = %v", ErrBadConfig, c.Lambda1)
	case c.Lambda2 <= 0 || math.IsNaN(c.Lambda2):
		return fmt.Errorf("%w: lambda2 = %v", ErrBadConfig, c.Lambda2)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadConfig, c.Trials)
	}
	return nil
}

// ConvergenceResult holds the ablation outputs.
type ConvergenceResult struct {
	// Iterations plots iterations-to-convergence vs -log10(tolerance),
	// for original and perturbed data.
	Iterations *Figure
	// MAE plots ground-truth MAE vs -log10(tolerance) on perturbed data.
	MAE *Figure
	// Wall plots wall time (ms) vs -log10(tolerance) on perturbed data.
	Wall *Figure
}

// Convergence sweeps the CRH convergence tolerance and measures the cost
// and accuracy on original versus perturbed data, validating the paper's
// claim that perturbation does not change convergence behaviour at any
// threshold.
func Convergence(cfg ConvergenceConfig) (*ConvergenceResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mech, err := core.NewMechanism(cfg.Lambda2)
	if err != nil {
		return nil, fmt.Errorf("eval: convergence: %w", err)
	}
	gen := synthetic.Config{
		NumUsers:    cfg.NumUsers,
		NumObjects:  cfg.NumObjects,
		Lambda1:     cfg.Lambda1,
		TruthLow:    0,
		TruthHigh:   10,
		ObserveProb: 1,
	}

	iterFig := &Figure{
		ID:     "ablation-convergence-iters",
		Title:  "iterations to convergence vs tolerance",
		XLabel: "-log10(tolerance)",
		YLabel: "iterations",
	}
	maeFig := &Figure{
		ID:     "ablation-convergence-mae",
		Title:  "ground-truth MAE vs tolerance (perturbed data)",
		XLabel: "-log10(tolerance)",
		YLabel: "MAE",
	}
	wallFig := &Figure{
		ID:     "ablation-convergence-wall",
		Title:  "truth-discovery wall time vs tolerance (perturbed data)",
		XLabel: "-log10(tolerance)",
		YLabel: "ms",
	}
	origIters := Series{Label: "original"}
	pertIters := Series{Label: "perturbed"}
	maeSeries := Series{Label: "MAE"}
	wallSeries := Series{Label: "perturbed"}

	root := randx.New(cfg.Seed)
	for _, tol := range cfg.Tolerances {
		if tol <= 0 || math.IsNaN(tol) {
			return nil, fmt.Errorf("%w: tolerance %v", ErrBadConfig, tol)
		}
		method, err := truth.NewCRH(truth.WithCRHTolerance(tol))
		if err != nil {
			return nil, fmt.Errorf("eval: convergence: %w", err)
		}
		var oIters, pIters, mae, wall stats.Welford
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := root.Split()
			inst, err := synthetic.Generate(gen, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: convergence: %w", err)
			}
			origRes, err := method.Run(inst.Dataset)
			if err != nil {
				return nil, fmt.Errorf("eval: convergence: %w", err)
			}
			perturbed, _, err := mech.PerturbDataset(inst.Dataset, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: convergence: %w", err)
			}
			start := time.Now()
			pertRes, err := method.Run(perturbed)
			if err != nil {
				return nil, fmt.Errorf("eval: convergence: %w", err)
			}
			wall.Add(float64(time.Since(start).Microseconds()) / 1000)
			oIters.Add(float64(origRes.Iterations))
			pIters.Add(float64(pertRes.Iterations))
			m, err := stats.MAE(pertRes.Truths, inst.GroundTruth)
			if err != nil {
				return nil, fmt.Errorf("eval: convergence: %w", err)
			}
			mae.Add(m)
		}
		x := -math.Log10(tol)
		origIters.Points = append(origIters.Points, Point{X: x, Y: oIters.Mean()})
		pertIters.Points = append(pertIters.Points, Point{X: x, Y: pIters.Mean()})
		maeSeries.Points = append(maeSeries.Points, Point{X: x, Y: mae.Mean()})
		wallSeries.Points = append(wallSeries.Points, Point{X: x, Y: wall.Mean()})
	}
	iterFig.Series = []Series{origIters, pertIters}
	maeFig.Series = []Series{maeSeries}
	wallFig.Series = []Series{wallSeries}
	return &ConvergenceResult{Iterations: iterFig, MAE: maeFig, Wall: wallFig}, nil
}
