package eval

import (
	"fmt"
	"math"

	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/stream"
	"pptd/internal/truth"
)

// StreamingConfig parameterizes the streaming-scenario experiment: a
// fleet re-measures a drifting ground truth every window, perturbs
// locally, and the windowed estimates of the stream engine (with and
// without decay) are compared against a per-window batch CRH run.
type StreamingConfig struct {
	// NumUsers and NumObjects size the fleet and task set.
	NumUsers   int
	NumObjects int
	// NumWindows is the stream length.
	NumWindows int
	// Drift is the per-window random-walk step of the ground truth.
	Drift float64
	// Decay is the engine's per-window retention factor for the decayed
	// variant.
	Decay float64
	// Lambda1 is the sensor-quality rate; Lambda2 the perturbation rate;
	// Delta the LDP delta windows are accounted at.
	Lambda1 float64
	Lambda2 float64
	Delta   float64
	// Trials averages the MAE curves over independent repetitions.
	Trials int
	// Seed derives all randomness.
	Seed uint64
	// Estimator selects the streaming estimator and its batch comparator
	// ("crh", "gtm", or "catd"; empty = CRH).
	Estimator string
}

func (c StreamingConfig) validate() error {
	switch {
	case c.NumUsers <= 0 || c.NumObjects <= 0 || c.NumWindows <= 0:
		return fmt.Errorf("%w: users=%d objects=%d windows=%d",
			ErrBadConfig, c.NumUsers, c.NumObjects, c.NumWindows)
	case c.Decay <= 0 || c.Decay > 1:
		return fmt.Errorf("%w: decay=%v", ErrBadConfig, c.Decay)
	case c.Lambda1 <= 0 || c.Lambda2 <= 0:
		return fmt.Errorf("%w: lambda1=%v lambda2=%v", ErrBadConfig, c.Lambda1, c.Lambda2)
	case c.Delta <= 0 || c.Delta >= 1:
		return fmt.Errorf("%w: delta=%v", ErrBadConfig, c.Delta)
	case c.Trials <= 0:
		return fmt.Errorf("%w: trials=%d", ErrBadConfig, c.Trials)
	case c.Drift < 0:
		return fmt.Errorf("%w: drift=%v", ErrBadConfig, c.Drift)
	case c.Estimator != "" && !stream.KnownEstimator(c.Estimator):
		return fmt.Errorf("%w: estimator=%q (have %v)", ErrBadConfig, c.Estimator, stream.EstimatorNames)
	}
	return nil
}

// StreamingResult holds the streaming experiment's figures.
type StreamingResult struct {
	// MAE compares the per-window ground-truth MAE of the decayed
	// stream, the undecayed stream, and a batch CRH run over only the
	// window's claims.
	MAE *Figure
	// Epsilon tracks the maximum cumulative per-user epsilon after each
	// window — the composition cost of streaming participation.
	Epsilon *Figure
}

// Streaming runs the streaming scenario: truths drift, devices submit
// perturbed readings every window, and three runs of the configured
// estimator — decayed stream, undecayed stream, per-window batch —
// track the moving target from the same perturbed claims.
func Streaming(cfg StreamingConfig) (*StreamingResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	batch, err := batchEstimator(cfg.Estimator)
	if err != nil {
		return nil, err
	}
	mech, err := core.NewMechanism(cfg.Lambda2)
	if err != nil {
		return nil, err
	}

	maeDecay := make([]float64, cfg.NumWindows)
	maePlain := make([]float64, cfg.NumWindows)
	maeBatch := make([]float64, cfg.NumWindows)
	maxEps := make([]float64, cfg.NumWindows)

	rootRNG := randx.New(cfg.Seed)
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rootRNG.Split()
		engineCfg := stream.Config{
			NumObjects: cfg.NumObjects,
			Estimator:  cfg.Estimator,
			Decay:      cfg.Decay,
			Lambda1:    cfg.Lambda1,
			Lambda2:    cfg.Lambda2,
			Delta:      cfg.Delta,
		}
		decayed, err := stream.New(engineCfg)
		if err != nil {
			return nil, err
		}
		engineCfg.Decay = 1
		plain, err := stream.New(engineCfg)
		if err != nil {
			return nil, err
		}

		groundTruth := make([]float64, cfg.NumObjects)
		for n := range groundTruth {
			groundTruth[n] = 10 * rng.Float64()
		}
		sigmas := make([]float64, cfg.NumUsers)
		perturbers := make([]*core.UserPerturber, cfg.NumUsers)
		for s := range sigmas {
			userRNG := rng.Split()
			sigmas[s] = math.Sqrt(userRNG.Exp() / cfg.Lambda1)
			perturbers[s] = mech.NewUserPerturber(userRNG)
		}

		for w := 0; w < cfg.NumWindows; w++ {
			for n := range groundTruth {
				groundTruth[n] += cfg.Drift * rng.Norm()
			}
			b := truth.NewBuilder(cfg.NumUsers, cfg.NumObjects)
			for s := 0; s < cfg.NumUsers; s++ {
				claims := make([]stream.Claim, cfg.NumObjects)
				for n, tv := range groundTruth {
					noisy := perturbers[s].Perturb(tv + sigmas[s]*rng.Norm())
					claims[n] = stream.Claim{Object: n, Value: noisy}
					b.Add(s, n, noisy)
				}
				id := fmt.Sprintf("u%03d", s)
				if _, _, err := decayed.Ingest(id, claims); err != nil {
					return nil, err
				}
				if _, _, err := plain.Ingest(id, claims); err != nil {
					return nil, err
				}
			}

			resDecay, err := decayed.CloseWindow()
			if err != nil {
				return nil, err
			}
			resPlain, err := plain.CloseWindow()
			if err != nil {
				return nil, err
			}
			ds, err := b.Build()
			if err != nil {
				return nil, err
			}
			resBatch, err := batch.Run(ds)
			if err != nil {
				return nil, err
			}

			maeDecay[w] += maeAgainst(resDecay.Truths, groundTruth)
			maePlain[w] += maeAgainst(resPlain.Truths, groundTruth)
			maeBatch[w] += maeAgainst(resBatch.Truths, groundTruth)
			if resDecay.Privacy != nil {
				maxEps[w] += resDecay.Privacy.MaxCumulative
			}
		}
		if err := decayed.Close(); err != nil {
			return nil, err
		}
		if err := plain.Close(); err != nil {
			return nil, err
		}
	}

	trials := float64(cfg.Trials)
	toSeries := func(label string, ys []float64) Series {
		s := Series{Label: label, Points: make([]Point, len(ys))}
		for w, y := range ys {
			s.Points[w] = Point{X: float64(w + 1), Y: y / trials}
		}
		return s
	}
	return &StreamingResult{
		MAE: &Figure{
			ID:     "ext-stream-a",
			Title:  "streaming truth discovery under drift: ground-truth MAE per window",
			XLabel: "window",
			YLabel: "MAE",
			Series: []Series{
				toSeries(fmt.Sprintf("stream decay=%.2g", cfg.Decay), maeDecay),
				toSeries("stream no-decay", maePlain),
				toSeries("batch per-window", maeBatch),
			},
		},
		Epsilon: &Figure{
			ID:     "ext-stream-b",
			Title:  "cumulative privacy loss of streaming participation",
			XLabel: "window",
			YLabel: "max per-user epsilon",
			Series: []Series{toSeries("cumulative epsilon", maxEps)},
		},
	}, nil
}

// batchEstimator returns the batch counterpart of a streaming estimator
// name ("" = CRH), the comparator each window's stream estimate is
// scored against.
func batchEstimator(name string) (truth.Method, error) {
	switch name {
	case "", stream.EstimatorCRH:
		return truth.NewCRH()
	case stream.EstimatorGTM:
		return truth.NewGTM()
	case stream.EstimatorCATD:
		return truth.NewCATD()
	}
	return nil, fmt.Errorf("%w: estimator=%q", ErrBadConfig, name)
}

// maeAgainst is the mean absolute error of the estimate vs reference,
// skipping uncovered (NaN) entries.
func maeAgainst(estimate, reference []float64) float64 {
	var sum float64
	var n int
	for i, v := range estimate {
		if math.IsNaN(v) {
			continue
		}
		sum += math.Abs(v - reference[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
