package eval

import (
	"fmt"
	"sort"

	"pptd/internal/attack"
	"pptd/internal/floorplan"
	"pptd/internal/synthetic"
	"pptd/internal/truth"
)

// Options control a registry run.
type Options struct {
	// Seed derives all experiment randomness.
	Seed uint64
	// Trials averages each measured point; 0 means the per-experiment
	// default.
	Trials int
	// Quick shrinks sweeps and trial counts for smoke runs.
	Quick bool
}

// Report is the output of one registered experiment.
type Report struct {
	// Name is the experiment id (e.g. "fig2").
	Name string
	// Description summarizes what the experiment reproduces.
	Description string
	// Figures holds the regenerated plots.
	Figures []*Figure
	// Tables holds any extra tables beyond the figures.
	Tables []*Table
	// Notes carries free-form findings (e.g. correlations).
	Notes []string
}

// Experiment is a registered, runnable reproduction target.
type Experiment struct {
	// Name is the registry key (matches the paper artifact).
	Name string
	// Description summarizes the experiment.
	Description string
	// Run executes it.
	Run func(Options) (*Report, error)
}

// Registry returns all experiments, sorted by name: fig2 through fig8
// plus the ablations.
func Registry() []Experiment {
	exps := []Experiment{
		{
			Name:        "fig2",
			Description: "utility-privacy trade-off on synthetic data with CRH (paper Fig. 2)",
			Run:         runFig2,
		},
		{
			Name:        "fig3",
			Description: "effect of lambda1, the error-distribution parameter (paper Fig. 3)",
			Run:         runFig3,
		},
		{
			Name:        "fig4",
			Description: "effect of S, the number of users (paper Fig. 4)",
			Run:         runFig4,
		},
		{
			Name:        "fig5",
			Description: "utility-privacy trade-off on synthetic data with GTM (paper Fig. 5)",
			Run:         runFig5,
		},
		{
			Name:        "fig6",
			Description: "utility-privacy trade-off on the indoor-floorplan system (paper Fig. 6)",
			Run:         runFig6,
		},
		{
			Name:        "fig7",
			Description: "true vs estimated user weights, original and perturbed (paper Fig. 7)",
			Run:         runFig7,
		},
		{
			Name:        "fig8",
			Description: "efficiency: truth-discovery running time vs noise level (paper Fig. 8)",
			Run:         runFig8,
		},
		{
			Name:        "ablation-methods",
			Description: "ground-truth MAE of CRH/GTM/CATD vs mean/median under noise (beyond paper)",
			Run:         runAblationMethods,
		},
		{
			Name:        "ablation-attack",
			Description: "robustness to spammer/biased/colluding adversaries (beyond paper)",
			Run:         runAblationAttack,
		},
		{
			Name:        "thmA1",
			Description: "empirical validation of Theorem A.1: tail probability vs S at c=1",
			Run:         runTheoremA1,
		},
		{
			Name:        "ext-categorical",
			Description: "categorical extension: accuracy under k-ary randomized response (beyond paper)",
			Run:         runCategorical,
		},
		{
			Name:        "ablation-cost",
			Description: "deployment cost: perturbation mechanism vs secure-aggregation baseline (beyond paper)",
			Run:         runCost,
		},
		{
			Name:        "ablation-convergence",
			Description: "convergence-threshold sweep: iterations/time/accuracy, original vs perturbed (beyond paper)",
			Run:         runConvergence,
		},
		{
			Name:        "ext-stream",
			Description: "streaming scenario: windowed incremental estimation under drift with cumulative epsilon (beyond paper)",
			Run:         runStreaming,
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].Name < exps[j].Name })
	return exps
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("eval: unknown experiment %q", name)
}

func trialCount(opts Options, def int) int {
	if opts.Trials > 0 {
		return opts.Trials
	}
	if opts.Quick {
		return 1
	}
	return def
}

func sweepEpsilons(opts Options) []float64 {
	if opts.Quick {
		return []float64{0.5, 1.5, 3}
	}
	return DefaultEpsilons()
}

func sweepDeltas(opts Options) []float64 {
	if opts.Quick {
		return []float64{0.2, 0.5}
	}
	return DefaultDeltas()
}

func newCRH() (truth.Method, error)  { return truth.NewCRH() }
func newGTM() (truth.Method, error)  { return truth.NewGTM() }
func newCATD() (truth.Method, error) { return truth.NewCATD() }

func runFig2(opts Options) (*Report, error) {
	method, err := newCRH()
	if err != nil {
		return nil, err
	}
	res, err := Tradeoff(TradeoffConfig{
		Source:   SyntheticSource(synthetic.Default()),
		Method:   method,
		Lambda1:  1,
		Epsilons: sweepEpsilons(opts),
		Deltas:   sweepDeltas(opts),
		Trials:   trialCount(opts, 5),
		Seed:     opts.Seed,
	}, "fig2")
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "fig2",
		Description: "utility-privacy trade-off, synthetic, CRH",
		Figures:     []*Figure{res.MAE, res.Noise},
	}, nil
}

func runFig3(opts Options) (*Report, error) {
	method, err := newCRH()
	if err != nil {
		return nil, err
	}
	lambda1s := DefaultLambda1s()
	if opts.Quick {
		lambda1s = []float64{0.5, 2, 10}
	}
	res, err := Lambda1Effect(Lambda1Config{
		Lambda1s:   lambda1s,
		Epsilon:    0.25,
		Delta:      0.2,
		NumUsers:   150,
		NumObjects: 30,
		Method:     method,
		Trials:     trialCount(opts, 5),
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "fig3",
		Description: "effect of lambda1 at fixed privacy target (eps=0.25, delta=0.2)",
		Figures:     []*Figure{res.MAE, res.Noise},
	}, nil
}

func runFig4(opts Options) (*Report, error) {
	method, err := newCRH()
	if err != nil {
		return nil, err
	}
	counts := DefaultUserCounts()
	if opts.Quick {
		counts = []int{100, 300, 600}
	}
	res, err := UsersEffect(UsersConfig{
		UserCounts: counts,
		Lambda1:    1,
		Lambda2:    4, // fixed mechanism: E|noise| ~ 0.35, matching Fig. 4(b)
		NumObjects: 30,
		Method:     method,
		Trials:     trialCount(opts, 5),
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "fig4",
		Description: "effect of S with a fixed mechanism (lambda2=4)",
		Figures:     []*Figure{res.MAE, res.Noise},
	}, nil
}

func runFig5(opts Options) (*Report, error) {
	method, err := newGTM()
	if err != nil {
		return nil, err
	}
	res, err := Tradeoff(TradeoffConfig{
		Source:   SyntheticSource(synthetic.Default()),
		Method:   method,
		Lambda1:  1,
		Epsilons: sweepEpsilons(opts),
		Deltas:   sweepDeltas(opts),
		Trials:   trialCount(opts, 5),
		Seed:     opts.Seed,
	}, "fig5")
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "fig5",
		Description: "utility-privacy trade-off, synthetic, GTM",
		Figures:     []*Figure{res.MAE, res.Noise},
	}, nil
}

func runFig6(opts Options) (*Report, error) {
	method, err := newCRH()
	if err != nil {
		return nil, err
	}
	fp := floorplan.Default()
	if opts.Quick {
		fp.NumUsers = 80
		fp.NumSegments = 40
	}
	// The floorplan reports are meter-scale lengths; their per-user error
	// variances correspond to an effective lambda1 near 1 on normalized
	// residuals, matching the paper's use of the same sweep.
	res, err := Tradeoff(TradeoffConfig{
		Source:   FloorplanSource(fp),
		Method:   method,
		Lambda1:  1,
		Epsilons: sweepEpsilons(opts),
		Deltas:   sweepDeltas(opts),
		Trials:   trialCount(opts, 3),
		Seed:     opts.Seed,
	}, "fig6")
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "fig6",
		Description: "utility-privacy trade-off on the indoor-floorplan system, CRH",
		Figures:     []*Figure{res.MAE, res.Noise},
	}, nil
}

func runFig7(opts Options) (*Report, error) {
	fp := floorplan.Default()
	if opts.Quick {
		fp.NumUsers = 60
		fp.NumSegments = 40
	}
	res, err := Weights(WeightsConfig{
		Floorplan:     fp,
		Lambda2:       2,
		NumShownUsers: 7,
		Seed:          opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "fig7",
		Description: "weight comparison on indoor-floorplan data (7 users across the quality spread)",
		Figures:     []*Figure{res.Original, res.Perturbed},
		Notes: []string{
			fmt.Sprintf("pearson(true, estimated) on original data:  %.4f", res.CorrOriginal),
			fmt.Sprintf("pearson(true, estimated) on perturbed data: %.4f", res.CorrPerturbed),
			fmt.Sprintf("noisiest user %d (delta^2=%.3f): normalized weight %.3f -> %.3f after perturbation",
				res.NoisiestUser, res.NoisiestVariance, res.NoisiestWeightBefore, res.NoisiestWeightAfter),
		},
	}, nil
}

func runFig8(opts Options) (*Report, error) {
	method, err := newCRH()
	if err != nil {
		return nil, err
	}
	users, objects := 500, 200
	if opts.Quick {
		users, objects = 100, 50
	}
	res, err := Efficiency(EfficiencyConfig{
		NoiseTargets: DefaultNoiseTargets(),
		NumUsers:     users,
		NumObjects:   objects,
		Lambda1:      1,
		Method:       method,
		Trials:       trialCount(opts, 3),
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "fig8",
		Description: "efficiency study: running time insensitive to noise level",
		Figures:     []*Figure{res.Time, res.Iterations},
		Notes: []string{
			fmt.Sprintf("baseline (no-noise) truth discovery time: %.3f ms", res.BaselineMillis),
		},
	}, nil
}

func runAblationMethods(opts Options) (*Report, error) {
	crh, err := newCRH()
	if err != nil {
		return nil, err
	}
	gtm, err := newGTM()
	if err != nil {
		return nil, err
	}
	catd, err := newCATD()
	if err != nil {
		return nil, err
	}
	targets := DefaultNoiseTargets()
	if opts.Quick {
		targets = []float64{0.2, 0.6, 1.0}
	}
	fig, err := MethodComparison(MethodsConfig{
		Source:       SyntheticSource(synthetic.Default()),
		Methods:      []truth.Method{crh, gtm, catd, truth.Mean{}, truth.Median{}},
		NoiseTargets: targets,
		Trials:       trialCount(opts, 5),
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "ablation-methods",
		Description: "weighted methods vs unweighted baselines under the mechanism's noise",
		Figures:     []*Figure{fig},
	}, nil
}

func runConvergence(opts Options) (*Report, error) {
	tols := []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8}
	if opts.Quick {
		tols = []float64{1e-2, 1e-5, 1e-8}
	}
	res, err := Convergence(ConvergenceConfig{
		Tolerances: tols,
		NumUsers:   150,
		NumObjects: 30,
		Lambda1:    1,
		Lambda2:    2,
		Trials:     trialCount(opts, 5),
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "ablation-convergence",
		Description: "the convergence threshold controls iteration count identically on original and perturbed data",
		Figures:     []*Figure{res.Iterations, res.MAE, res.Wall},
	}, nil
}

func runCost(opts Options) (*Report, error) {
	counts := []int{50, 100, 150, 200}
	if opts.Quick {
		counts = []int{30, 80}
	}
	res, err := CostComparison(CostConfig{
		UserCounts: counts,
		NumObjects: 30,
		Lambda1:    1,
		Lambda2:    2,
		Trials:     trialCount(opts, 3),
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "ablation-cost",
		Description: "the paper's efficiency argument quantified: one-shot perturbed uploads vs per-round masked sums",
		Figures:     []*Figure{res.Bytes, res.Wall},
		Tables:      []*Table{res.Table},
	}, nil
}

func runTheoremA1(opts Options) (*Report, error) {
	counts := []int{5, 10, 20, 50, 100}
	trials := trialCount(opts, 200)
	if opts.Quick {
		counts = []int{5, 20, 100}
		trials = trialCount(opts, 30)
	}
	fig, err := TheoremA1(TheoremA1Config{
		UserCounts: counts,
		Lambda1:    1,
		Alpha:      1, // above 2*sqrt(2/pi)*E(Y) ~ 0.845 at lambda1=1
		NumObjects: 30,
		Trials:     trials,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "thmA1",
		Description: "Theorem A.1 at c=1: empirical tail probability is dominated by the bound and vanishes with S",
		Figures:     []*Figure{fig},
	}, nil
}

func runCategorical(opts Options) (*Report, error) {
	eps := []float64{0.5, 1, 1.5, 2, 3, 4}
	if opts.Quick {
		eps = []float64{0.5, 2, 4}
	}
	fig, err := Categorical(CategoricalConfig{
		Epsilons:      eps,
		NumUsers:      100,
		NumObjects:    100,
		NumCategories: 3,
		MinCorrect:    0.45,
		MaxCorrect:    0.95,
		Trials:        trialCount(opts, 5),
		Seed:          opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "ext-categorical",
		Description: "categorical claims under k-RR: weighted voting vs majority across epsilon",
		Figures:     []*Figure{fig},
	}, nil
}

func runStreaming(opts Options) (*Report, error) {
	cfg := StreamingConfig{
		NumUsers:   120,
		NumObjects: 25,
		NumWindows: 8,
		Drift:      0.5,
		Decay:      0.5,
		Lambda1:    1,
		Lambda2:    2,
		Delta:      0.3,
		Trials:     trialCount(opts, 3),
		Seed:       opts.Seed,
	}
	if opts.Quick {
		cfg.NumUsers = 40
		cfg.NumObjects = 10
		cfg.NumWindows = 4
	}
	res, err := Streaming(cfg)
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "ext-stream",
		Description: "windowed streaming truth discovery tracking a drifting ground truth, with per-window privacy composition",
		Figures:     []*Figure{res.MAE, res.Epsilon},
	}, nil
}

func runAblationAttack(opts Options) (*Report, error) {
	crh, err := newCRH()
	if err != nil {
		return nil, err
	}
	cfg := synthetic.Default()
	cfg.Lambda1 = 4
	fig, table, err := AttackComparison(AttackConfig{
		Source:  SyntheticSource(cfg),
		Methods: []truth.Method{crh, truth.Mean{}, truth.Median{}},
		Adversaries: []attack.Adversary{
			attack.Spammer{Fraction: 0.2},
			attack.Biased{Fraction: 0.2, Offset: 5},
			attack.Colluders{Fraction: 0.2, Shift: 4},
		},
		Lambda2: 2,
		Trials:  trialCount(opts, 5),
		Seed:    opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Name:        "ablation-attack",
		Description: "robustness of weighted aggregation under adversarial users plus perturbation",
		Figures:     []*Figure{fig},
		Tables:      []*Table{table},
	}, nil
}
