// Package dataio reads and writes pptd's on-disk dataset format, so the
// tools can exchange crowd sensing data with external pipelines.
//
// The format is CSV with an optional ground-truth preamble:
//
//	# truth,<object>,<value>        (zero or more, simulation-only)
//	user,object,value               (header, required)
//	0,0,1.25
//	0,1,3.50
//	...
//
// User and object indices are non-negative integers; dimensions are
// inferred from the maximum indices seen.
package dataio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pptd/internal/truth"
)

// ErrBadFormat reports a malformed dataset file.
var ErrBadFormat = errors.New("dataio: bad format")

// header is the required CSV header line.
const header = "user,object,value"

// truthPrefix starts a ground-truth preamble line.
const truthPrefix = "# truth,"

// Write emits the dataset (and optional ground truth) in the CSV format.
func Write(w io.Writer, ds *truth.Dataset, groundTruth []float64) error {
	if ds == nil {
		return fmt.Errorf("%w: nil dataset", ErrBadFormat)
	}
	if groundTruth != nil && len(groundTruth) != ds.NumObjects() {
		return fmt.Errorf("%w: %d truths for %d objects", ErrBadFormat, len(groundTruth), ds.NumObjects())
	}
	bw := bufio.NewWriter(w)
	for n, tv := range groundTruth {
		fmt.Fprintf(bw, "%s%d,%s\n", truthPrefix, n, strconv.FormatFloat(tv, 'g', -1, 64))
	}
	fmt.Fprintln(bw, header)
	for _, o := range ds.Observations() {
		fmt.Fprintf(bw, "%d,%d,%s\n", o.User, o.Object, strconv.FormatFloat(o.Value, 'g', -1, 64))
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataio: write: %w", err)
	}
	return nil
}

// Read parses the CSV format. The returned ground truth is nil when the
// file has no truth preamble; when present it covers every object index
// up to the dataset's object count (missing entries are NaN-free zeros
// only if explicitly written, otherwise an error is reported).
func Read(r io.Reader) (*truth.Dataset, []float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	truths := make(map[int]float64)
	var (
		sawHeader bool
		obs       []truth.Observation
		maxUser   = -1
		maxObject = -1
		lineNo    int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, truthPrefix):
			if sawHeader {
				return nil, nil, fmt.Errorf("%w: line %d: truth preamble after header", ErrBadFormat, lineNo)
			}
			rest := strings.TrimPrefix(line, truthPrefix)
			parts := strings.Split(rest, ",")
			if len(parts) != 2 {
				return nil, nil, fmt.Errorf("%w: line %d: want '# truth,<object>,<value>'", ErrBadFormat, lineNo)
			}
			n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("%w: line %d: bad truth object %q", ErrBadFormat, lineNo, parts[0])
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: line %d: bad truth value %q", ErrBadFormat, lineNo, parts[1])
			}
			if _, dup := truths[n]; dup {
				return nil, nil, fmt.Errorf("%w: line %d: duplicate truth for object %d", ErrBadFormat, lineNo, n)
			}
			truths[n] = v
		case strings.HasPrefix(line, "#"):
			continue // other comments ignored
		case !sawHeader:
			if line != header {
				return nil, nil, fmt.Errorf("%w: line %d: want header %q, got %q", ErrBadFormat, lineNo, header, line)
			}
			sawHeader = true
		default:
			parts := strings.Split(line, ",")
			if len(parts) != 3 {
				return nil, nil, fmt.Errorf("%w: line %d: want 'user,object,value'", ErrBadFormat, lineNo)
			}
			user, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil || user < 0 {
				return nil, nil, fmt.Errorf("%w: line %d: bad user %q", ErrBadFormat, lineNo, parts[0])
			}
			object, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil || object < 0 {
				return nil, nil, fmt.Errorf("%w: line %d: bad object %q", ErrBadFormat, lineNo, parts[1])
			}
			value, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: line %d: bad value %q", ErrBadFormat, lineNo, parts[2])
			}
			obs = append(obs, truth.Observation{User: user, Object: object, Value: value})
			if user > maxUser {
				maxUser = user
			}
			if object > maxObject {
				maxObject = object
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dataio: read: %w", err)
	}
	if !sawHeader {
		return nil, nil, fmt.Errorf("%w: missing header %q", ErrBadFormat, header)
	}
	if len(obs) == 0 {
		return nil, nil, fmt.Errorf("%w: no observations", ErrBadFormat)
	}

	b := truth.NewBuilder(maxUser+1, maxObject+1)
	for _, o := range obs {
		b.Add(o.User, o.Object, o.Value)
	}
	ds, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("dataio: build dataset: %w", err)
	}

	if len(truths) == 0 {
		return ds, nil, nil
	}
	gt := make([]float64, ds.NumObjects())
	for n := range gt {
		v, ok := truths[n]
		if !ok {
			return nil, nil, fmt.Errorf("%w: truth preamble missing object %d", ErrBadFormat, n)
		}
		gt[n] = v
	}
	return ds, gt, nil
}
