package dataio

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/synthetic"
	"pptd/internal/truth"
)

func TestRoundTripWithTruth(t *testing.T) {
	cfg := synthetic.Default()
	cfg.NumUsers = 12
	cfg.NumObjects = 7
	cfg.ObserveProb = 0.7
	inst, err := synthetic.Generate(cfg, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := Write(&sb, inst.Dataset, inst.GroundTruth); err != nil {
		t.Fatal(err)
	}
	ds, gt, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumObservations() != inst.Dataset.NumObservations() {
		t.Fatalf("observations %d != %d", ds.NumObservations(), inst.Dataset.NumObservations())
	}
	if len(gt) != len(inst.GroundTruth) {
		t.Fatalf("truths %d != %d", len(gt), len(inst.GroundTruth))
	}
	for n := range gt {
		if gt[n] != inst.GroundTruth[n] {
			t.Fatalf("truth %d: %v != %v", n, gt[n], inst.GroundTruth[n])
		}
	}
	a, b := inst.Dataset.Dense(), ds.Dense()
	for s := range a {
		for n := range a[s] {
			if math.IsNaN(a[s][n]) != math.IsNaN(b[s][n]) ||
				(!math.IsNaN(a[s][n]) && a[s][n] != b[s][n]) {
				t.Fatalf("cell (%d,%d): %v != %v", s, n, b[s][n], a[s][n])
			}
		}
	}
}

func TestRoundTripWithoutTruth(t *testing.T) {
	ds, err := truth.FromDense([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, ds, nil); err != nil {
		t.Fatal(err)
	}
	got, gt, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if gt != nil {
		t.Fatalf("expected nil ground truth, got %v", gt)
	}
	if got.NumObservations() != 4 {
		t.Fatalf("observations = %d", got.NumObservations())
	}
}

func TestWriteValidation(t *testing.T) {
	if err := Write(&strings.Builder{}, nil, nil); !errors.Is(err, ErrBadFormat) {
		t.Error("nil dataset accepted")
	}
	ds, err := truth.FromDense([][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(&strings.Builder{}, ds, []float64{1}); !errors.Is(err, ErrBadFormat) {
		t.Error("truth length mismatch accepted")
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "missing header", give: "0,0,1\n"},
		{name: "wrong header", give: "a,b,c\n0,0,1\n"},
		{name: "short row", give: "user,object,value\n0,0\n"},
		{name: "bad user", give: "user,object,value\nx,0,1\n"},
		{name: "negative user", give: "user,object,value\n-1,0,1\n"},
		{name: "bad object", give: "user,object,value\n0,y,1\n"},
		{name: "bad value", give: "user,object,value\n0,0,z\n"},
		{name: "no rows", give: "user,object,value\n"},
		{name: "bad truth line", give: "# truth,0\nuser,object,value\n0,0,1\n"},
		{name: "bad truth object", give: "# truth,x,1\nuser,object,value\n0,0,1\n"},
		{name: "bad truth value", give: "# truth,0,x\nuser,object,value\n0,0,1\n"},
		{name: "duplicate truth", give: "# truth,0,1\n# truth,0,2\nuser,object,value\n0,0,1\n"},
		{name: "truth after header", give: "user,object,value\n# truth,0,1\n0,0,1\n"},
		{name: "truth gap", give: "# truth,1,5\nuser,object,value\n0,0,1\n0,1,5\n"},
		{name: "duplicate observation", give: "user,object,value\n0,0,1\n0,0,2\n"},
		{name: "uncovered object", give: "user,object,value\n0,1,2\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Read(strings.NewReader(tt.give)); err == nil {
				t.Error("malformed input accepted")
			}
		})
	}
}

func TestReadIgnoresCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nuser,object,value\n# another\n0,0,1.5\n\n1,0,2.5\n"
	ds, gt, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if gt != nil || ds.NumObservations() != 2 || ds.NumUsers() != 2 {
		t.Fatalf("parsed %d obs, %d users, gt=%v", ds.NumObservations(), ds.NumUsers(), gt)
	}
}

func TestReadWhitespaceTolerant(t *testing.T) {
	in := "user,object,value\n 0 , 0 , 1.5 \n"
	ds, _, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ds.UserObservations(0)
	if err != nil {
		t.Fatal(err)
	}
	if obs[0].Value != 1.5 {
		t.Fatalf("value = %v", obs[0].Value)
	}
}
