// Package pptd is a Go implementation of privacy-preserving truth
// discovery for crowd sensing systems, reproducing Li et al., "Towards
// Differentially Private Truth Discovery for Crowd Sensing Systems"
// (ICDCS 2020).
//
// The mechanism (Algorithm 2 of the paper) combines two pieces:
//
//   - Local perturbation: each user samples a private noise variance
//     delta_s^2 from an exponential distribution with server-released
//     rate lambda2 and adds N(0, delta_s^2) noise to every reading before
//     it leaves the device. No coordination between users is needed, and
//     the realized noise distribution is unknown to the server, yielding
//     (epsilon, delta)-local differential privacy (Theorem 4.8).
//
//   - Weighted aggregation: the server runs iterative truth discovery
//     (CRH, GTM, ...) on the perturbed data. Because truth discovery
//     estimates per-user weights from agreement with the current truth
//     estimate, users who drew large noise are automatically
//     down-weighted, so the aggregate barely moves even under large
//     noise ((alpha, beta)-utility, Theorem 4.3).
//
// Quick start:
//
//	rng := pptd.NewRNG(42)
//	acct, _ := pptd.NewAccountant(1)                    // data quality lambda1
//	mech, _ := acct.MechanismForEpsilon(0.5, 0.3)       // (eps, delta) target
//	method, _ := pptd.NewCRH()
//	pipe, _ := pptd.NewPipeline(mech, method)
//	outcome, _ := pipe.Run(dataset, rng)
//	fmt.Println(outcome.UtilityMAE)                     // utility loss
//
// The subpackage layout mirrors the paper: the mechanism and accountant
// live in internal/core, truth discovery in internal/truth, the
// closed-form analysis in internal/theory, data generators in
// internal/synthetic and internal/floorplan, the networked crowd sensing
// system in internal/crowd, and the figure-regeneration harness in
// internal/eval. This package re-exports the full public surface.
package pptd

import (
	"pptd/internal/core"
	"pptd/internal/randx"
)

// RNG is the deterministic random-number generator used by every
// stochastic component. See NewRNG.
type RNG = randx.RNG

// NewRNG returns a deterministic RNG seeded with seed (xoshiro256++
// seeded via splitmix64). The same seed always reproduces the same
// stream; derive independent streams with Split.
func NewRNG(seed uint64) *RNG { return randx.New(seed) }

// Mechanism is the paper's perturbation mechanism M, parameterized by
// the server-released noise-variance rate lambda2.
type Mechanism = core.Mechanism

// NewMechanism returns the perturbation mechanism with the given lambda2.
func NewMechanism(lambda2 float64) (*Mechanism, error) { return core.NewMechanism(lambda2) }

// UserPerturber perturbs a single user's readings with that user's
// private noise variance (client-side half of Algorithm 2).
type UserPerturber = core.UserPerturber

// PerturbationReport summarizes the noise injected by one dataset-level
// perturbation (simulation-only knowledge).
type PerturbationReport = core.Report

// Accountant converts between mechanism parameters and the
// (epsilon, delta)-local-differential-privacy guarantee (Theorem 4.8).
type Accountant = core.Accountant

// AccountantOption configures NewAccountant.
type AccountantOption = core.AccountantOption

// NewAccountant returns an accountant for a crowd whose error variances
// follow Exp(lambda1).
func NewAccountant(lambda1 float64, opts ...AccountantOption) (*Accountant, error) {
	return core.NewAccountant(lambda1, opts...)
}

// WithSensitivityTail overrides the Lemma 4.7 sensitivity-tail constants
// b and eta (defaults 3 and 0.95).
func WithSensitivityTail(b, eta float64) AccountantOption {
	return core.WithSensitivityTail(b, eta)
}

// Pipeline runs the full Algorithm 2 flow: perturb, aggregate, compare.
type Pipeline = core.Pipeline

// Outcome is the result of one Pipeline run.
type Outcome = core.Outcome

// NewPipeline returns a pipeline combining a mechanism with a
// truth-discovery method.
func NewPipeline(mechanism *Mechanism, method Method) (*Pipeline, error) {
	return core.NewPipeline(mechanism, method)
}
