// Package pptd is a Go implementation of privacy-preserving truth
// discovery for crowd sensing systems, reproducing Li et al., "Towards
// Differentially Private Truth Discovery for Crowd Sensing Systems"
// (ICDCS 2020).
//
// The mechanism (Algorithm 2 of the paper) combines two pieces:
//
//   - Local perturbation: each user samples a private noise variance
//     delta_s^2 from an exponential distribution with server-released
//     rate lambda2 and adds N(0, delta_s^2) noise to every reading before
//     it leaves the device. No coordination between users is needed, and
//     the realized noise distribution is unknown to the server, yielding
//     (epsilon, delta)-local differential privacy (Theorem 4.8).
//
//   - Weighted aggregation: the server runs iterative truth discovery
//     (CRH, GTM, ...) on the perturbed data. Because truth discovery
//     estimates per-user weights from agreement with the current truth
//     estimate, users who drew large noise are automatically
//     down-weighted, so the aggregate barely moves even under large
//     noise ((alpha, beta)-utility, Theorem 4.3).
//
// Quick start (library pipeline):
//
//	rng := pptd.NewRNG(42)
//	acct, _ := pptd.NewAccountant(1)                    // data quality lambda1
//	mech, _ := acct.MechanismForEpsilon(0.5, 0.3)       // (eps, delta) target
//	method, _ := pptd.NewCRH()
//	pipe, _ := pptd.NewPipeline(mech, method)
//	outcome, _ := pipe.Run(dataset, rng)
//	fmt.Println(outcome.UtilityMAE)                     // utility loss
//
// # Serving quick start: the Node front door
//
// Deployments build one Node from functional options — it can host the
// batch campaign, the streaming engine, and durable persistence, all on
// a single HTTP mux whose every non-2xx response is a versioned JSON
// error envelope ({v, code, message, retry_after_windows?}):
//
//	node, _ := pptd.NewNode(
//		pptd.WithName("air-quality"),
//		pptd.WithStreamEngine(30),
//		pptd.WithDataQuality(1.5),            // lambda1 the accountant assumes
//		pptd.WithPrivacyTarget(0.5, 0.3),     // (eps, delta) per window; derives lambda2
//		pptd.WithEpsilonBudget(5),            // cumulative per-user cap
//		pptd.WithWindowInterval(time.Minute), // ticker-driven window closes
//		pptd.WithPersistence("/var/lib/pptd"),
//	)
//	defer node.Close()
//	go http.ListenAndServe(":8080", node.Handler())
//
//	client, _ := pptd.NewClient("http://localhost:8080")
//	info, err := client.StreamTruthsAt(ctx, 7) // a recent window by number
//	if errors.Is(err, pptd.ErrUnknownWindow) { ... } // typed, decoded from the envelope
//
// Conflicting or half-configured options fail NewNode with a typed
// error wrapping ErrNodeConfig (for example WithLambda2 together with
// WithPrivacyTarget, or WithEpsilonBudget without accounting) — nothing
// is silently defaulted. docs/API.md carries the endpoint table, the
// error-code table, the options reference, and the migration guide from
// the older config-struct constructors, which remain as deprecated
// wrappers.
//
// # Streaming quick start
//
// Beyond the one-shot campaign, the streaming engine serves continuous
// submission traffic: perturbed claims ingest concurrently into sharded
// workers, fold into exponentially-decayed sufficient statistics, and
// every window close re-estimates truths and weights incrementally with
// a pluggable estimator — incremental CRH (the default), GTM, or CATD,
// selected by WithMethod or StreamConfig.Estimator and warm-started
// from the previous window — while a privacy accountant
// tracks each user's cumulative (epsilon, delta) spending — one
// submission per user per window, so the per-window charge covers
// exactly one perturbed release and both epsilon and delta compose
// linearly over a user's windows:
//
//	eng, _ := pptd.NewStreamEngine(pptd.StreamConfig{
//		NumObjects: 30,
//		Decay:      0.8,              // forget stale windows
//		Lambda1:    1,                // enables budget accounting
//		Lambda2:    2, Delta: 0.3,
//	})
//	defer eng.Close()
//	eng.Ingest("device-1", []pptd.StreamClaim{{Object: 0, Value: 3.2}})
//	res, _ := eng.CloseWindow()       // incremental truths + weights
//	fmt.Println(res.Truths[0], res.Privacy.MaxCumulative)
//
// On a closed window with decay disabled each incremental estimator
// matches its batch counterpart (CRH, GTM, or CATD) within 1e-9, and an
// engine recovered from a snapshot continues within the same bound —
// snapshots record which estimator wrote them, and restoring under a
// different one fails with ErrStreamEstimatorMismatch. The same engine
// backs the HTTP streaming campaign (NewStreamCampaignServer, POST
// /v1/stream/claims, GET /v1/stream/truths); cmd/pptdstream drives a
// simulated fleet against it and reports throughput, accuracy, and the
// cumulative budget per window. Privacy reports carry aggregates only by
// default; the per-user epsilon map (the full historical client roster)
// is opt-in via StreamConfig.PerUserReport.
//
// # Durable streaming state
//
// A streaming privacy guarantee is only as durable as its ledger: if a
// restart erased cumulative epsilon, every returning client would
// re-spend its budget from zero. OpenStreamStore gives the engine a
// state directory with an append-only, fsync'd journal of rolling
// segment files (one record per accepted submission — its (user,
// window) epsilon charge and, with StreamConfig.ClaimWAL, its claims —
// durable before the submission is acknowledged; concurrent
// submissions coalesce into group-commit batches that share one fsync,
// so the durable path scales with load, and segments past
// StreamStoreOptions.SegmentBytes are sealed so snapshots compact by
// deleting covered segments instead of rewriting the journal), atomic
// checksummed engine snapshots written per a configurable cadence
// (StreamStoreOptions.SnapshotEvery / SnapshotBytes, with retained
// generations), and the last published window result:
//
//	node, _ := pptd.NewNode(
//		pptd.WithStreamConfig(pptd.StreamConfig{ // explicit rates; or WithPrivacyTarget
//			NumObjects: 30, Lambda1: 1, Lambda2: 2, Delta: 0.3,
//		}),
//		pptd.WithWindowInterval(time.Minute), // optional ticker-driven window closes
//		pptd.WithPersistence("/var/lib/pptd"), // node owns the store; claim WAL on
//	)
//	defer node.Close()
//
// On startup the server restores the latest snapshot, replays the
// journal on top (re-running any window closes the journal implies),
// and serves the persisted previous estimate immediately, so a
// kill-and-recover deployment produces the same next-window truths and
// weights as an uninterrupted one (within 1e-9 with the claim WAL), a
// budget-exhausted user stays rejected after the restart, and GET
// /v1/stream/truths never regresses to 404 across a restart — including
// ?window=N reads over the persisted recent-result history. Raw
// engines get the same hooks via StreamEngine.ExportState / Restore /
// ReplayJournal / RestoreHistory, StreamConfig.Ledger, and
// StreamStore.Recover. The full crash-recovery contract — what
// survives which failure, the fsync/ack ordering, and the group-commit
// and snapshot-cadence trade-offs — is specified in docs/DURABILITY.md,
// and docs/ARCHITECTURE.md maps the paper's sections onto the packages
// and walks the ingest → journal → snapshot → recovery pipeline.
//
// The subpackage layout mirrors the paper: the mechanism and accountant
// live in internal/core, truth discovery in internal/truth, the
// closed-form analysis in internal/theory, data generators in
// internal/synthetic and internal/floorplan, the networked crowd sensing
// system in internal/crowd (one-shot and streaming), the streaming
// engine in internal/stream, its durable state in internal/streamstore,
// and the figure-regeneration harness in internal/eval. This package
// re-exports the full public surface.
package pptd

import (
	"pptd/internal/core"
	"pptd/internal/randx"
)

// RNG is the deterministic random-number generator used by every
// stochastic component. See NewRNG.
type RNG = randx.RNG

// NewRNG returns a deterministic RNG seeded with seed (xoshiro256++
// seeded via splitmix64). The same seed always reproduces the same
// stream; derive independent streams with Split.
func NewRNG(seed uint64) *RNG { return randx.New(seed) }

// Mechanism is the paper's perturbation mechanism M, parameterized by
// the server-released noise-variance rate lambda2.
type Mechanism = core.Mechanism

// NewMechanism returns the perturbation mechanism with the given lambda2.
func NewMechanism(lambda2 float64) (*Mechanism, error) { return core.NewMechanism(lambda2) }

// UserPerturber perturbs a single user's readings with that user's
// private noise variance (client-side half of Algorithm 2).
type UserPerturber = core.UserPerturber

// PerturbationReport summarizes the noise injected by one dataset-level
// perturbation (simulation-only knowledge).
type PerturbationReport = core.Report

// Accountant converts between mechanism parameters and the
// (epsilon, delta)-local-differential-privacy guarantee (Theorem 4.8).
type Accountant = core.Accountant

// AccountantOption configures NewAccountant.
type AccountantOption = core.AccountantOption

// NewAccountant returns an accountant for a crowd whose error variances
// follow Exp(lambda1).
func NewAccountant(lambda1 float64, opts ...AccountantOption) (*Accountant, error) {
	return core.NewAccountant(lambda1, opts...)
}

// WithSensitivityTail overrides the Lemma 4.7 sensitivity-tail constants
// b and eta (defaults 3 and 0.95).
func WithSensitivityTail(b, eta float64) AccountantOption {
	return core.WithSensitivityTail(b, eta)
}

// Pipeline runs the full Algorithm 2 flow: perturb, aggregate, compare.
type Pipeline = core.Pipeline

// Outcome is the result of one Pipeline run.
type Outcome = core.Outcome

// NewPipeline returns a pipeline combining a mechanism with a
// truth-discovery method.
func NewPipeline(mechanism *Mechanism, method Method) (*Pipeline, error) {
	return core.NewPipeline(mechanism, method)
}
