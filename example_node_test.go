package pptd_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"

	"pptd"
)

// ExampleNewNode builds the unified front door — a streaming engine
// with window history behind one HTTP mux — submits a claim, closes a
// window, and reads it back by number; a miss decodes into the typed
// ErrUnknownWindow from the wire envelope.
func ExampleNewNode() {
	node, err := pptd.NewNode(
		pptd.WithName("demo"),
		pptd.WithStreamEngine(1),
		pptd.WithWindowHistory(4),
	)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	defer func() { _ = node.Close() }()

	ts := httptest.NewServer(node.Handler())
	defer ts.Close()
	client, _ := pptd.NewClient(ts.URL)
	ctx := context.Background()

	_, _ = client.StreamSubmit(ctx, pptd.CampaignSubmission{
		ClientID: "device-1",
		Claims:   []pptd.CampaignClaim{{Object: 0, Value: 21.5}},
	})
	if _, err := client.StreamCloseWindow(ctx); err != nil {
		fmt.Println("close:", err)
		return
	}

	info, _ := client.StreamTruthsAt(ctx, 1)
	fmt.Printf("window %d truth %.1f\n", info.Window, info.Truths[0])

	_, err = client.StreamTruthsAt(ctx, 42)
	fmt.Println("window 42 unknown:", errors.Is(err, pptd.ErrUnknownWindow))

	// Output:
	// window 1 truth 21.5
	// window 42 unknown: true
}

// ExampleNewNode_validation shows the option matrix refusing a
// half-configured node with a typed error instead of a silent default.
func ExampleNewNode_validation() {
	_, err := pptd.NewNode(
		pptd.WithStreamEngine(10),
		pptd.WithEpsilonBudget(5), // budget without any accounting
	)
	fmt.Println(errors.Is(err, pptd.ErrNodeConfig))
	// Output:
	// true
}
