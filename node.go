package pptd

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"pptd/internal/cluster"
	"pptd/internal/crowd"
	"pptd/internal/obs"
	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// ErrNodeConfig reports an invalid NewNode option set: a bad argument, a
// half-configured feature, or two options that contradict each other.
// Every configuration error wraps it, so errors.Is(err, ErrNodeConfig)
// catches them all.
var ErrNodeConfig = errors.New("pptd: invalid node configuration")

// Option configures NewNode. Options carry their own validation; cross-
// option consistency (conflicts, missing prerequisites) is checked once
// after all options applied, so the outcome does not depend on option
// order.
type Option func(*nodeConfig) error

// nodeConfig accumulates the option set before validation. The *Set
// flags distinguish "explicitly configured" from zero values, which is
// what lets validation reject half-configured feature combinations
// instead of silently defaulting them.
type nodeConfig struct {
	name string

	lambda2    float64
	lambda2Set bool

	targetEps   float64
	targetDelta float64
	targetSet   bool

	lambda1    float64
	lambda1Set bool

	budget    float64
	budgetSet bool
	perUser   bool

	batchObjects int
	batchSet     bool
	expected     int
	expectedSet  bool
	method       Method

	streamObjects  int
	streamSet      bool
	streamBase     *StreamConfig
	shards         int
	shardsSet      bool
	decay          float64
	decaySet       bool
	history        int
	historySet     bool
	windowInterval time.Duration
	intervalSet    bool
	distance       Distance
	distanceSet    bool
	tolerance      float64
	toleranceSet   bool
	maxIter        int
	maxIterSet     bool
	queueDepth     int
	queueSet       bool
	noCarryover    bool

	maxRequestBytes int64

	maxResident      int
	maxResidentSet   bool
	residentBytes    int64
	residentBytesSet bool

	stateDir    string
	persistSet  bool
	store       StreamStoreOptions
	claimWALOff bool

	clusterWorker   bool
	clusterWorkers  []string
	clusterSet      bool
	shipDest        string
	shipSet         bool
	shipInterval    time.Duration
	shipIntervalSet bool

	logger *slog.Logger
	debug  bool
}

func optErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrNodeConfig, fmt.Sprintf(format, args...))
}

// WithName labels the node's campaigns.
func WithName(name string) Option {
	return func(c *nodeConfig) error {
		c.name = name
		return nil
	}
}

// WithBatchCampaign hosts the one-shot batch campaign (Algorithm 2's
// collect-then-aggregate flow) over numObjects micro-tasks. The
// truth-discovery method defaults to CRH (WithMethod overrides) and
// aggregation is manual unless WithExpectedUsers sets a trigger.
func WithBatchCampaign(numObjects int) Option {
	return func(c *nodeConfig) error {
		if numObjects <= 0 {
			return optErr("WithBatchCampaign: numObjects = %d", numObjects)
		}
		if c.batchSet {
			return optErr("WithBatchCampaign configured twice")
		}
		c.batchObjects = numObjects
		c.batchSet = true
		return nil
	}
}

// WithExpectedUsers auto-aggregates the batch campaign once n users have
// submitted. Requires WithBatchCampaign.
func WithExpectedUsers(n int) Option {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithExpectedUsers: n = %d", n)
		}
		c.expected = n
		c.expectedSet = true
		return nil
	}
}

// WithMethod selects the truth-discovery method (default CRH). It
// applies to every campaign the node hosts: the batch campaign runs the
// method as given, and the streaming engine runs its incremental
// counterpart (so the streaming estimators are CRH, GTM, and CATD —
// configuring a stream engine with a batch-only method like the mean or
// median baseline fails validation). On a durable node the method is
// also cross-checked against the recovered snapshot: restoring state
// written by a different estimator fails with ErrStreamEstimatorMismatch
// instead of silently reinterpreting it. Requires WithBatchCampaign or a
// stream engine.
func WithMethod(m Method) Option {
	return func(c *nodeConfig) error {
		if m == nil {
			return optErr("WithMethod: nil method")
		}
		c.method = m
		return nil
	}
}

// WithStreamEngine hosts the streaming engine over numObjects objects:
// perturbed claims ingest continuously into sharded workers and every
// window close publishes an incremental estimate. Defaults: automatic
// shard count, no decay, no privacy accounting (see WithPrivacyTarget),
// DefaultStreamHistoryWindows retained results.
func WithStreamEngine(numObjects int) Option {
	return func(c *nodeConfig) error {
		if numObjects <= 0 {
			return optErr("WithStreamEngine: numObjects = %d", numObjects)
		}
		if c.streamSet {
			return optErr("WithStreamEngine configured twice")
		}
		if c.streamBase != nil {
			return optErr("WithStreamEngine conflicts with WithStreamConfig: the engine config already carries the object count")
		}
		c.streamObjects = numObjects
		c.streamSet = true
		return nil
	}
}

// WithStreamConfig hosts the streaming engine from a full StreamConfig —
// the advanced escape hatch for knobs without a dedicated option
// (explicit lambda1/lambda2/delta accounting, claim WAL, metrics
// registry). Fine-grained stream options that would contradict it
// (WithStreamEngine, and WithPrivacyTarget when the config enables its
// own accounting) are rejected at validation.
func WithStreamConfig(cfg StreamConfig) Option {
	return func(c *nodeConfig) error {
		if c.streamSet {
			return optErr("WithStreamConfig conflicts with WithStreamEngine: the engine config already carries the object count")
		}
		if c.streamBase != nil {
			return optErr("WithStreamConfig configured twice")
		}
		base := cfg
		c.streamBase = &base
		return nil
	}
}

// WithShards overrides the streaming engine's ingestion shard count
// (default: one per core, capped at 8). Requires a stream engine.
func WithShards(n int) Option {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithShards: n = %d", n)
		}
		c.shards = n
		c.shardsSet = true
		return nil
	}
}

// WithDecay sets the streaming engine's per-window retention factor in
// (0, 1]: 1 keeps all history, smaller values forget old claims
// exponentially. Requires a stream engine.
func WithDecay(d float64) Option {
	return func(c *nodeConfig) error {
		if d <= 0 || d > 1 || math.IsNaN(d) {
			return optErr("WithDecay: d = %v (want (0, 1])", d)
		}
		c.decay = d
		c.decaySet = true
		return nil
	}
}

// WithWindowInterval closes streaming windows automatically on a ticker,
// so the deployment does not depend on an external POST
// /v1/stream/window driver. Requires a stream engine.
func WithWindowInterval(d time.Duration) Option {
	return func(c *nodeConfig) error {
		if d <= 0 {
			return optErr("WithWindowInterval: d = %v", d)
		}
		c.windowInterval = d
		c.intervalSet = true
		return nil
	}
}

// WithWindowHistory retains the last k published window results for
// GET /v1/stream/truths?window=N reads (default
// DefaultStreamHistoryWindows). On a durable node the same k recent
// results are persisted, so history reads survive a kill-and-recover.
// Requires a stream engine.
func WithWindowHistory(k int) Option {
	return func(c *nodeConfig) error {
		if k <= 0 {
			return optErr("WithWindowHistory: k = %d", k)
		}
		c.history = k
		c.historySet = true
		return nil
	}
}

// WithStreamDistance selects the claim-to-truth distance of the
// streaming CRH weight update (default NormalizedSquaredDistance,
// matching batch CRH). It parameterizes the CRH estimator only, so it
// conflicts with WithMethod selecting GTM or CATD. Requires a stream
// engine.
func WithStreamDistance(d Distance) Option {
	return func(c *nodeConfig) error {
		switch d {
		case SquaredDistance, AbsoluteDistance, NormalizedSquaredDistance:
		default:
			return optErr("WithStreamDistance: unknown distance %v", d)
		}
		c.distance = d
		c.distanceSet = true
		return nil
	}
}

// WithStreamTolerance sets the convergence tolerance of the streaming
// estimation loop: a window's iteration stops once no truth moved by
// more than tol (default truth.DefaultTolerance). Requires a stream
// engine.
func WithStreamTolerance(tol float64) Option {
	return func(c *nodeConfig) error {
		if tol <= 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
			return optErr("WithStreamTolerance: tol = %v", tol)
		}
		c.tolerance = tol
		c.toleranceSet = true
		return nil
	}
}

// WithStreamMaxIterations caps the streaming estimation loop's
// iterations per window close (default truth.DefaultMaxIterations).
// Requires a stream engine.
func WithStreamMaxIterations(n int) Option {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithStreamMaxIterations: n = %d", n)
		}
		c.maxIter = n
		c.maxIterSet = true
		return nil
	}
}

// WithQueueDepth sets the per-shard ingestion channel buffer (default
// 64): deeper queues absorb burstier submission traffic before Ingest
// blocks, at the cost of memory. Requires a stream engine.
func WithQueueDepth(n int) Option {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithQueueDepth: n = %d", n)
		}
		c.queueDepth = n
		c.queueSet = true
		return nil
	}
}

// WithMaxRequestBytes caps the request body of every POST route the
// node serves — stream claims, batch submissions, and (on cluster
// workers and coordinators) the cluster close/commit RPCs. An oversized
// body is refused with the 413 payload_too_large envelope before it is
// buffered, so one client cannot exhaust the node's memory with a
// single giant request. The default is 16 MiB (see the API docs);
// raise it for deployments whose legitimate batches are larger, or
// lower it to tighten the ingest surface.
func WithMaxRequestBytes(n int64) Option {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithMaxRequestBytes: n = %d", n)
		}
		c.maxRequestBytes = n
		return nil
	}
}

// WithMaxResidentUsers caps how many distinct users the streaming
// engine holds in memory: at each window close, idle users past the cap
// are evicted LRU-first, their budget and estimator state spilled
// durably to the persistence store, and re-admitted transparently on
// their next claim. Published estimates are unchanged — only fully
// decayed (statistics-free) users are eligible — and privacy accounting
// never forgets a charge: an exhausted user stays rejected across
// eviction, re-admission, and restart. Requires a stream engine and
// WithPersistence (the spill store).
func WithMaxResidentUsers(n int) Option {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithMaxResidentUsers: n = %d", n)
		}
		if c.maxResidentSet {
			return optErr("WithMaxResidentUsers configured twice")
		}
		c.maxResident = n
		c.maxResidentSet = true
		return nil
	}
}

// WithResidentBytes caps the streaming engine's estimated in-memory
// user footprint in bytes instead of (or in addition to) a head count;
// eviction behaves exactly as under WithMaxResidentUsers. Requires a
// stream engine and WithPersistence (the spill store).
func WithResidentBytes(n int64) Option {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithResidentBytes: n = %d", n)
		}
		if c.residentBytesSet {
			return optErr("WithResidentBytes configured twice")
		}
		c.residentBytes = n
		c.residentBytesSet = true
		return nil
	}
}

// WithoutWeightCarryover makes every streaming window's estimation
// restart from uniform weights instead of warm-starting from the
// previous window's estimates (and, under GTM, resets the learned
// per-user variances each window). The published estimates are
// identical either way once converged; carryover only saves iterations.
// Requires a stream engine.
func WithoutWeightCarryover() Option {
	return func(c *nodeConfig) error {
		c.noCarryover = true
		return nil
	}
}

// WithLambda2 publishes an explicit perturbation rate lambda2 to users
// (the rate each device samples its private noise variance with). It
// does not by itself enable privacy accounting — use WithPrivacyTarget
// for that — and conflicts with it, since the target derives lambda2.
func WithLambda2(lambda2 float64) Option {
	return func(c *nodeConfig) error {
		if lambda2 <= 0 || math.IsNaN(lambda2) || math.IsInf(lambda2, 0) {
			return optErr("WithLambda2: lambda2 = %v", lambda2)
		}
		c.lambda2 = lambda2
		c.lambda2Set = true
		return nil
	}
}

// WithPrivacyTarget asks each streaming window (and the batch campaign's
// single release) to satisfy (eps, delta)-local differential privacy:
// the node derives the lambda2 to publish from the target via the
// paper's accountant (Theorem 4.8) and meters every streaming user's
// cumulative spending, both eps and delta composing linearly across
// their windows. Requires WithDataQuality (the accountant's assumed
// error-variance rate); conflicts with WithLambda2.
func WithPrivacyTarget(eps, delta float64) Option {
	return func(c *nodeConfig) error {
		if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
			return optErr("WithPrivacyTarget: eps = %v", eps)
		}
		if delta <= 0 || delta >= 1 || math.IsNaN(delta) {
			return optErr("WithPrivacyTarget: delta = %v (want (0, 1))", delta)
		}
		c.targetEps = eps
		c.targetDelta = delta
		c.targetSet = true
		return nil
	}
}

// WithDataQuality sets lambda1, the error-variance rate the privacy
// accountant assumes the crowd's sensors follow (the paper's data-
// quality parameter). Required by WithPrivacyTarget.
func WithDataQuality(lambda1 float64) Option {
	return func(c *nodeConfig) error {
		if lambda1 <= 0 || math.IsNaN(lambda1) || math.IsInf(lambda1, 0) {
			return optErr("WithDataQuality: lambda1 = %v", lambda1)
		}
		c.lambda1 = lambda1
		c.lambda1Set = true
		return nil
	}
}

// WithEpsilonBudget caps each streaming user's cumulative epsilon:
// submissions that would start a window past the cap are rejected
// (budget_exhausted on the wire). Requires privacy accounting
// (WithPrivacyTarget, or WithStreamConfig with Lambda1 set).
func WithEpsilonBudget(budget float64) Option {
	return func(c *nodeConfig) error {
		if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
			return optErr("WithEpsilonBudget: budget = %v", budget)
		}
		c.budget = budget
		c.budgetSet = true
		return nil
	}
}

// WithPerUserReport opts the full per-user cumulative-epsilon map into
// privacy reports (default: aggregates only — the map is the complete
// historical client-ID roster). Requires privacy accounting.
func WithPerUserReport() Option {
	return func(c *nodeConfig) error {
		c.perUser = true
		return nil
	}
}

// WithClusterWorker exposes the node's streaming engine as a cluster
// shard worker: the coordinator-facing close/commit RPCs are mounted
// next to the streaming API, so a ClusterCoordinator can route this
// node's share of users here and drive its window closes. Because the
// coordinator owns the close schedule, it conflicts with
// WithWindowInterval. Requires a stream engine.
func WithClusterWorker() Option {
	return func(c *nodeConfig) error {
		c.clusterWorker = true
		return nil
	}
}

// WithClusterCoordinator makes the node the ingest coordinator of a
// sharded cluster over the given worker base URLs: instead of hosting a
// local engine, the node routes each user's claims to the worker owning
// them on the hash ring and runs the merge-estimate close protocol, so
// GET /v1/stream/truths serves cluster-wide estimates identical to a
// single node's. The stream options (WithStreamEngine or
// WithStreamConfig, WithMethod, WithDecay, privacy options, ...)
// describe the engine configuration shared with the workers, which is
// cross-checked against each worker at startup; WithWindowInterval
// drives cluster-wide closes. The coordinator holds no durable state —
// durability lives on the workers — so it conflicts with
// WithPersistence, residency caps, segment shipping, WithClusterWorker,
// and WithBatchCampaign.
func WithClusterCoordinator(workers ...string) Option {
	return func(c *nodeConfig) error {
		if len(workers) == 0 {
			return optErr("WithClusterCoordinator: no workers")
		}
		if c.clusterSet {
			return optErr("WithClusterCoordinator configured twice")
		}
		c.clusterWorkers = append([]string(nil), workers...)
		c.clusterSet = true
		return nil
	}
}

// WithSegmentShipping replicates the node's durable state to dest in
// the background: sealed journal segments ship once, the active
// segment's durable prefix, snapshots, results, and the spill file
// follow on every pass. dest is a local archive directory, or — with an
// http:// or https:// scheme — the base URL of a ClusterFollower; a
// fresh node pointed at the replica recovers to the shipped state
// (warm standby, point-in-time restore, read replica). Requires
// WithPersistence.
func WithSegmentShipping(dest string) Option {
	return func(c *nodeConfig) error {
		if dest == "" {
			return optErr("WithSegmentShipping: empty destination")
		}
		if c.shipSet {
			return optErr("WithSegmentShipping configured twice")
		}
		c.shipDest = dest
		c.shipSet = true
		return nil
	}
}

// WithShippingInterval sets the segment-shipping cadence (default 5s).
// Requires WithSegmentShipping.
func WithShippingInterval(d time.Duration) Option {
	return func(c *nodeConfig) error {
		if d <= 0 {
			return optErr("WithShippingInterval: d = %v", d)
		}
		c.shipInterval = d
		c.shipIntervalSet = true
		return nil
	}
}

// WithLogger emits one structured log line per HTTP request through the
// given slog logger: request_id, method, route pattern, path, status,
// duration, bytes, and the error-envelope code on failures (5xx at
// error level, everything else at info). The request_id is the
// X-Request-ID the response echoed, so a client-reported failure joins
// against the log stream directly. Without this option the node logs
// nothing; request metrics are collected either way.
func WithLogger(l *slog.Logger) Option {
	return func(c *nodeConfig) error {
		if l == nil {
			return optErr("WithLogger: nil logger")
		}
		c.logger = l
		return nil
	}
}

// WithDebugHandlers mounts net/http/pprof's profiling endpoints under
// /debug/pprof/ on the node's mux. Opt-in: the profiles expose
// operational internals (goroutine stacks, heap contents) that do not
// belong on an unguarded public listener.
func WithDebugHandlers() Option {
	return func(c *nodeConfig) error {
		c.debug = true
		return nil
	}
}

// PersistenceOption tunes WithPersistence.
type PersistenceOption func(*nodeConfig) error

// WithPersistence makes the node's campaigns durable in the given state
// directory. On the streaming side, every privacy charge (and, by
// default, the submission's claims — see WithoutClaimWAL) is journaled
// with an fsync before the submission is acknowledged, each window
// close persists its published result (the retained history, so
// ?window= reads survive restarts), the engine is snapshotted per the
// configured cadence, and residency-cap evictions (WithMaxResidentUsers
// / WithResidentBytes) spill user state to the same store. On the batch
// side, every accepted submission is WAL'd before its receipt and the
// aggregated result persists before it is first published. The node
// owns the store: NewNode opens it and Node.Close closes it.
func WithPersistence(dir string, opts ...PersistenceOption) Option {
	return func(c *nodeConfig) error {
		if dir == "" {
			return optErr("WithPersistence: empty state directory")
		}
		if c.persistSet {
			return optErr("WithPersistence configured twice")
		}
		c.stateDir = dir
		c.persistSet = true
		for _, o := range opts {
			if o == nil {
				continue
			}
			if err := o(c); err != nil {
				return err
			}
		}
		return nil
	}
}

// WithSnapshotEvery snapshots the engine on every nth window close
// (default every close); the journal covers the windows in between.
func WithSnapshotEvery(n int) PersistenceOption {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithSnapshotEvery: n = %d", n)
		}
		c.store.SnapshotEvery = n
		return nil
	}
}

// WithSnapshotBytes forces a snapshot once the journal outgrows the
// given size, bounding recovery replay time regardless of cadence.
func WithSnapshotBytes(n int64) PersistenceOption {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithSnapshotBytes: n = %d", n)
		}
		c.store.SnapshotBytes = n
		return nil
	}
}

// WithSegmentBytes caps each journal segment file at n bytes (default
// 4 MiB): appends roll to a fresh segment past the cap, and snapshots
// compact by deleting fully-covered sealed segments — O(segments),
// never a rewrite. Smaller segments reclaim disk sooner at the cost of
// more files.
func WithSegmentBytes(n int64) PersistenceOption {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithSegmentBytes: n = %d", n)
		}
		c.store.SegmentBytes = n
		return nil
	}
}

// WithRetainSnapshots keeps the previous n snapshot generations as
// manual-recovery artifacts (recovery never reads them).
func WithRetainSnapshots(n int) PersistenceOption {
	return func(c *nodeConfig) error {
		if n <= 0 {
			return optErr("WithRetainSnapshots: n = %d", n)
		}
		c.store.RetainSnapshots = n
		return nil
	}
}

// WithGroupCommit tunes journal group commit: how long a batch leader
// lingers for more concurrent appends before fsyncing (0 = no added
// latency) and the records one batch may carry (0 = default 256, 1 =
// one fsync per append).
func WithGroupCommit(flushInterval time.Duration, maxBatch int) PersistenceOption {
	return func(c *nodeConfig) error {
		if flushInterval < 0 {
			return optErr("WithGroupCommit: flushInterval = %v", flushInterval)
		}
		if maxBatch < 0 {
			return optErr("WithGroupCommit: maxBatch = %d", maxBatch)
		}
		c.store.FlushInterval = flushInterval
		c.store.MaxBatch = maxBatch
		return nil
	}
}

// WithoutClaimWAL journals privacy charges only, not the submissions'
// claims. The budget still survives any crash, but statistics accepted
// after the last snapshot are lost with it (privacy-conservative: the
// charge stands, the data is gone). The default — claims in the WAL —
// makes a kill-and-recover node match an uninterrupted one.
func WithoutClaimWAL() PersistenceOption {
	return func(c *nodeConfig) error {
		c.claimWALOff = true
		return nil
	}
}

// validate checks cross-option consistency after every option applied.
// Half-configured or contradictory sets fail with a typed error (wrapped
// ErrNodeConfig) naming the options involved — never a silent default.
func (c *nodeConfig) validate() error {
	streaming := c.streamSet || c.streamBase != nil
	if !c.batchSet && !streaming {
		return optErr("configure at least one of WithBatchCampaign and WithStreamEngine")
	}
	if c.expectedSet && !c.batchSet {
		return optErr("WithExpectedUsers requires WithBatchCampaign")
	}
	if c.method != nil && streaming && !stream.KnownEstimator(c.method.Name()) {
		return optErr("WithMethod: %q is batch-only; streaming estimators are %v",
			c.method.Name(), stream.EstimatorNames)
	}
	if c.distanceSet && c.method != nil && c.method.Name() != stream.EstimatorCRH {
		return optErr("WithStreamDistance parameterizes the CRH estimator, but WithMethod selected %q", c.method.Name())
	}
	for opt, set := range map[string]bool{
		"WithShards":              c.shardsSet,
		"WithDecay":               c.decaySet,
		"WithWindowInterval":      c.intervalSet,
		"WithWindowHistory":       c.historySet,
		"WithEpsilonBudget":       c.budgetSet,
		"WithPerUserReport":       c.perUser,
		"WithStreamDistance":      c.distanceSet,
		"WithStreamTolerance":     c.toleranceSet,
		"WithStreamMaxIterations": c.maxIterSet,
		"WithQueueDepth":          c.queueSet,
		"WithoutWeightCarryover":  c.noCarryover,
		"WithMaxResidentUsers":    c.maxResidentSet,
		"WithResidentBytes":       c.residentBytesSet,
	} {
		if set && !streaming {
			return optErr("%s requires a stream engine (WithStreamEngine or WithStreamConfig)", opt)
		}
	}
	// WithPersistence serves either campaign (the batch WAL needs no
	// stream engine), but never neither — validated above.
	if (c.maxResidentSet || c.residentBytesSet) && !c.persistSet &&
		(c.streamBase == nil || c.streamBase.UserStore == nil) {
		return optErr("residency caps (WithMaxResidentUsers / WithResidentBytes) require WithPersistence: evicted users spill to the store")
	}
	if c.clusterWorker && !streaming {
		return optErr("WithClusterWorker requires a stream engine (WithStreamEngine or WithStreamConfig)")
	}
	if c.clusterWorker && c.intervalSet {
		return optErr("WithClusterWorker conflicts with WithWindowInterval: the coordinator drives window closes")
	}
	if c.clusterSet {
		if !streaming {
			return optErr("WithClusterCoordinator requires a stream engine config (WithStreamEngine or WithStreamConfig)")
		}
		for opt, set := range map[string]bool{
			"WithClusterWorker":    c.clusterWorker,
			"WithPersistence":      c.persistSet,
			"WithSegmentShipping":  c.shipSet,
			"WithBatchCampaign":    c.batchSet,
			"WithMaxResidentUsers": c.maxResidentSet,
			"WithResidentBytes":    c.residentBytesSet,
		} {
			if set {
				return optErr("WithClusterCoordinator conflicts with %s: the coordinator holds no engine or durable state of its own", opt)
			}
		}
	}
	if c.shipSet && !c.persistSet {
		return optErr("WithSegmentShipping requires WithPersistence: shipping replicates the state directory")
	}
	if c.shipIntervalSet && !c.shipSet {
		return optErr("WithShippingInterval requires WithSegmentShipping")
	}
	if c.lambda2Set && c.targetSet {
		return optErr("WithLambda2 conflicts with WithPrivacyTarget: the target derives lambda2")
	}
	if c.targetSet && !c.lambda1Set {
		return optErr("WithPrivacyTarget requires WithDataQuality (the accountant's error-variance rate)")
	}
	if c.lambda1Set && !c.targetSet {
		return optErr("WithDataQuality requires WithPrivacyTarget (nothing to account without a target)")
	}
	if c.streamBase != nil {
		if c.targetSet && c.streamBase.Lambda1 > 0 {
			return optErr("WithPrivacyTarget conflicts with WithStreamConfig accounting (Lambda1 set)")
		}
		if c.lambda2Set && c.streamBase.Lambda2 > 0 {
			return optErr("WithLambda2 conflicts with WithStreamConfig.Lambda2")
		}
		if c.historySet && c.streamBase.HistoryWindows != 0 {
			return optErr("WithWindowHistory conflicts with WithStreamConfig.HistoryWindows")
		}
		if c.shardsSet && c.streamBase.NumShards != 0 {
			return optErr("WithShards conflicts with WithStreamConfig.NumShards")
		}
		if c.decaySet && c.streamBase.Decay != 0 {
			return optErr("WithDecay conflicts with WithStreamConfig.Decay")
		}
		if c.method != nil && c.streamBase.Estimator != "" {
			return optErr("WithMethod conflicts with WithStreamConfig.Estimator")
		}
		if c.distanceSet {
			if c.streamBase.Distance != 0 {
				return optErr("WithStreamDistance conflicts with WithStreamConfig.Distance")
			}
			if est := c.streamBase.Estimator; est != "" && est != stream.EstimatorCRH {
				return optErr("WithStreamDistance parameterizes the CRH estimator, but WithStreamConfig.Estimator is %q", est)
			}
		}
		if c.toleranceSet && c.streamBase.Tolerance != 0 {
			return optErr("WithStreamTolerance conflicts with WithStreamConfig.Tolerance")
		}
		if c.maxIterSet && c.streamBase.MaxIterations != 0 {
			return optErr("WithStreamMaxIterations conflicts with WithStreamConfig.MaxIterations")
		}
		if c.queueSet && c.streamBase.QueueDepth != 0 {
			return optErr("WithQueueDepth conflicts with WithStreamConfig.QueueDepth")
		}
		if c.noCarryover && c.streamBase.DisableCarryover {
			return optErr("WithoutWeightCarryover conflicts with WithStreamConfig.DisableCarryover")
		}
		if c.budgetSet && c.streamBase.EpsilonBudget != 0 {
			return optErr("WithEpsilonBudget conflicts with WithStreamConfig.EpsilonBudget")
		}
		if c.perUser && c.streamBase.PerUserReport {
			return optErr("WithPerUserReport conflicts with WithStreamConfig.PerUserReport")
		}
		if c.maxResidentSet && c.streamBase.MaxResidentUsers != 0 {
			return optErr("WithMaxResidentUsers conflicts with WithStreamConfig.MaxResidentUsers")
		}
		if c.residentBytesSet && c.streamBase.ResidentBytes != 0 {
			return optErr("WithResidentBytes conflicts with WithStreamConfig.ResidentBytes")
		}
		// An explicit ClaimWAL in the escape hatch must stay loud, never
		// silently defaulted away: it conflicts with WithoutClaimWAL, it
		// is meaningless without accounting (claims ride the charge
		// journal), and it needs a durable journal to ride.
		if c.streamBase.ClaimWAL {
			if c.claimWALOff {
				return optErr("WithoutClaimWAL conflicts with WithStreamConfig.ClaimWAL")
			}
			if c.streamBase.Lambda1 <= 0 {
				return optErr("WithStreamConfig.ClaimWAL requires accounting (Lambda1 > 0): claims ride the charge journal")
			}
			if !c.persistSet && c.streamBase.Ledger == nil {
				return optErr("WithStreamConfig.ClaimWAL requires WithPersistence (or an explicit Ledger) to journal into")
			}
		}
	}
	accounting := c.targetSet || (c.streamBase != nil && c.streamBase.Lambda1 > 0)
	if c.budgetSet && !accounting {
		return optErr("WithEpsilonBudget requires privacy accounting (WithPrivacyTarget or WithStreamConfig.Lambda1)")
	}
	if c.perUser && !accounting {
		return optErr("WithPerUserReport requires privacy accounting (WithPrivacyTarget or WithStreamConfig.Lambda1)")
	}
	if c.batchSet && !c.lambda2Set && !c.targetSet && (c.streamBase == nil || c.streamBase.Lambda2 <= 0) {
		return optErr("WithBatchCampaign requires a perturbation rate (WithLambda2 or WithPrivacyTarget)")
	}
	return nil
}

// Node is the unified front door to a privacy-preserving truth-discovery
// deployment: one process that can host the one-shot batch campaign, the
// windowed streaming engine, and durable persistence — all mounted on a
// single HTTP mux speaking one error-envelope contract. Build it with
// NewNode and functional options; Close releases everything the node
// owns (stream workers, window ticker, state store).
type Node struct {
	name    string
	batch   *CampaignServer
	stream  *StreamCampaignServer
	store   *StreamStore
	coord   *cluster.Coordinator
	shipper *cluster.Shipper
	metrics *obs.Registry

	handler http.Handler
}

// NewNode builds a node from functional options. At least one of
// WithBatchCampaign and WithStreamEngine (or WithStreamConfig) must be
// given; every option carries its defaults, and half-configured or
// conflicting option sets fail with an error wrapping ErrNodeConfig
// before anything is started. The returned node owns its resources —
// including the WithPersistence store — and must be Closed.
func NewNode(opts ...Option) (*Node, error) {
	var cfg nodeConfig
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	// Resolve the perturbation rate: explicit, derived from the privacy
	// target via the accountant, or carried by the escape-hatch config.
	lambda2 := cfg.lambda2
	if cfg.targetSet {
		acct, err := NewAccountant(cfg.lambda1)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrNodeConfig, err)
		}
		mech, err := acct.MechanismForEpsilon(cfg.targetEps, cfg.targetDelta)
		if err != nil {
			return nil, fmt.Errorf("%w: WithPrivacyTarget(%v, %v): %w",
				ErrNodeConfig, cfg.targetEps, cfg.targetDelta, err)
		}
		lambda2 = mech.Lambda2()
	}
	if lambda2 == 0 && cfg.streamBase != nil {
		lambda2 = cfg.streamBase.Lambda2
	}

	// Every node carries a metrics registry: the engine, the store, and
	// the HTTP middleware all publish into it, and GET /metrics serves
	// the text exposition. Registration is cheap enough that there is no
	// opt-out — the scrape endpoint simply goes unscraped.
	n := &Node{name: cfg.name, metrics: obs.NewRegistry()}
	ok := false
	defer func() {
		if !ok {
			_ = n.Close()
		}
	}()

	if cfg.streamSet || cfg.streamBase != nil {
		engineCfg := StreamConfig{}
		if cfg.streamBase != nil {
			engineCfg = *cfg.streamBase
		} else {
			engineCfg.NumObjects = cfg.streamObjects
		}
		if cfg.shardsSet {
			engineCfg.NumShards = cfg.shards
		}
		if cfg.decaySet {
			engineCfg.Decay = cfg.decay
		}
		if cfg.historySet {
			engineCfg.HistoryWindows = cfg.history
		}
		if cfg.method != nil {
			engineCfg.Estimator = cfg.method.Name()
		}
		if cfg.distanceSet {
			engineCfg.Distance = cfg.distance
		}
		if cfg.toleranceSet {
			engineCfg.Tolerance = cfg.tolerance
		}
		if cfg.maxIterSet {
			engineCfg.MaxIterations = cfg.maxIter
		}
		if cfg.queueSet {
			engineCfg.QueueDepth = cfg.queueDepth
		}
		if cfg.noCarryover {
			engineCfg.DisableCarryover = true
		}
		if cfg.targetSet {
			engineCfg.Lambda1 = cfg.lambda1
			engineCfg.Delta = cfg.targetDelta
		}
		if lambda2 > 0 {
			engineCfg.Lambda2 = lambda2
		}
		if cfg.budgetSet {
			engineCfg.EpsilonBudget = cfg.budget
		}
		if cfg.perUser {
			engineCfg.PerUserReport = true
		}
		if cfg.maxResidentSet {
			engineCfg.MaxResidentUsers = cfg.maxResident
		}
		if cfg.residentBytesSet {
			engineCfg.ResidentBytes = cfg.residentBytes
		}
		if engineCfg.Metrics == nil {
			engineCfg.Metrics = n.metrics
		}
		if cfg.clusterSet {
			// Coordinator mode: the stream options describe the cluster's
			// shared engine configuration; no local engine runs here.
			coord, err := cluster.NewCoordinator(cluster.Config{
				Name:            cfg.name,
				Engine:          engineCfg,
				Workers:         cfg.clusterWorkers,
				WindowInterval:  cfg.windowInterval,
				MaxRequestBytes: cfg.maxRequestBytes,
				Metrics:         n.metrics,
			})
			if err != nil {
				return nil, err
			}
			n.coord = coord
		}
		if !cfg.clusterSet && cfg.persistSet {
			// Persist as many recent results as the engine retains, so
			// ?window= reads answer the same span across a restart.
			history := engineCfg.HistoryWindows
			if history == 0 {
				history = DefaultStreamHistoryWindows
			}
			cfg.store.ResultHistory = history
			cfg.store.Metrics = n.metrics
			store, err := streamstore.OpenWith(cfg.stateDir, cfg.store)
			if err != nil {
				return nil, err
			}
			n.store = store
			// Default the claim WAL on for accounted durable nodes; an
			// explicit WithStreamConfig.ClaimWAL passed validation above
			// and is preserved either way.
			if !cfg.claimWALOff && engineCfg.Lambda1 > 0 {
				engineCfg.ClaimWAL = true
			}
		}
		if !cfg.clusterSet {
			srv, err := crowd.NewStreamServer(crowd.StreamServerConfig{
				Name:            cfg.name,
				Engine:          engineCfg,
				Persistence:     n.store,
				WindowInterval:  cfg.windowInterval,
				MaxRequestBytes: cfg.maxRequestBytes,
			})
			if err != nil {
				return nil, err
			}
			n.stream = srv
		}
	}

	// A batch-only durable node still gets the store: the streaming
	// branch above opens it when both campaigns (or just streaming) are
	// configured, so this only fires when WithPersistence rides alone
	// with WithBatchCampaign.
	if cfg.persistSet && n.store == nil {
		cfg.store.Metrics = n.metrics
		store, err := streamstore.OpenWith(cfg.stateDir, cfg.store)
		if err != nil {
			return nil, err
		}
		n.store = store
	}

	if cfg.shipSet {
		var sink cluster.Sink
		var err error
		if strings.HasPrefix(cfg.shipDest, "http://") || strings.HasPrefix(cfg.shipDest, "https://") {
			sink, err = cluster.NewHTTPSink(cfg.shipDest, nil)
		} else {
			sink, err = cluster.NewDirSink(cfg.shipDest)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: WithSegmentShipping(%q): %w", ErrNodeConfig, cfg.shipDest, err)
		}
		interval := cfg.shipInterval
		if interval <= 0 {
			interval = 5 * time.Second
		}
		shipper, err := cluster.NewShipper(n.store, sink, interval, n.metrics)
		if err != nil {
			return nil, err
		}
		n.shipper = shipper
		shipper.Start()
	}

	if cfg.batchSet {
		method := cfg.method
		if method == nil {
			m, err := NewCRH()
			if err != nil {
				return nil, err
			}
			method = m
		}
		srv, err := crowd.NewServer(crowd.ServerConfig{
			Name:            cfg.name,
			NumObjects:      cfg.batchObjects,
			Lambda2:         lambda2,
			ExpectedUsers:   cfg.expected,
			Method:          method,
			Persistence:     n.store,
			MaxRequestBytes: cfg.maxRequestBytes,
		})
		if err != nil {
			return nil, err
		}
		n.batch = srv
	}

	mux := http.NewServeMux()
	if n.batch != nil {
		n.batch.Register(mux)
	}
	if n.stream != nil {
		n.stream.Register(mux)
		if cfg.clusterWorker {
			n.stream.RegisterCluster(mux)
		}
	}
	if n.coord != nil {
		n.coord.Register(mux)
	}
	mux.Handle(crowd.PathMetrics, crowd.GetOnly(n.metrics.Handler()))
	if cfg.debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// The telemetry middleware wraps the whole front door — every route,
	// the not-found envelope, /metrics itself — labeling each request
	// with its mux pattern so metric cardinality stays bounded no matter
	// what paths are probed.
	n.handler = obs.Middleware(obs.MiddlewareConfig{
		Registry: n.metrics,
		Logger:   cfg.logger,
		Route: func(r *http.Request) string {
			if _, pattern := mux.Handler(r); pattern != "" {
				return pattern
			}
			return "unmatched"
		},
	})(withEnvelopeNotFound(mux))
	ok = true
	return n, nil
}

// withEnvelopeNotFound keeps the front door's contract total: paths no
// route is mounted at get the JSON error envelope (code "not_found"),
// not net/http's plain-text 404.
func withEnvelopeNotFound(mux *http.ServeMux) http.Handler {
	notFound := crowd.NotFoundHandler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, pattern := mux.Handler(r)
		if pattern == "" {
			notFound.ServeHTTP(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// Name returns the label the node's campaigns carry.
func (n *Node) Name() string { return n.name }

// Handler returns the node's HTTP handler: every configured API — batch
// campaign, streaming campaign, stats — on one mux, plus the Prometheus
// exposition at GET /metrics (and, with WithDebugHandlers, pprof under
// /debug/pprof/). Every non-2xx JSON response carries the versioned
// error envelope, every response echoes an X-Request-ID, and every
// request is counted and timed in the node's metrics registry.
func (n *Node) Handler() http.Handler { return n.handler }

// Batch returns the hosted batch campaign server, or nil when
// WithBatchCampaign was not configured.
func (n *Node) Batch() *CampaignServer { return n.batch }

// Stream returns the hosted streaming campaign server, or nil when no
// stream engine was configured.
func (n *Node) Stream() *StreamCampaignServer { return n.stream }

// Metrics returns the node's metrics registry — the one behind
// GET /metrics. Embedding applications may register their own
// instruments on it; they appear in the same exposition.
func (n *Node) Metrics() *MetricsRegistry { return n.metrics }

// Store returns the node-owned durable state store, or nil without
// WithPersistence. The node closes it in Close; callers may read Stats
// from it but must not Close it themselves.
func (n *Node) Store() *StreamStore { return n.store }

// Coordinator returns the hosted cluster coordinator, or nil without
// WithClusterCoordinator.
func (n *Node) Coordinator() *ClusterCoordinator { return n.coord }

// Shipper returns the node's segment shipper, or nil without
// WithSegmentShipping.
func (n *Node) Shipper() *SegmentShipper { return n.shipper }

// Close releases everything the node owns, in dependency order: the
// streaming server first (stopping the window ticker and shard workers,
// and writing a final snapshot on a durable node), then the state store.
func (n *Node) Close() error {
	var errs []error
	if n.coord != nil {
		if err := n.coord.Close(); err != nil {
			errs = append(errs, err)
		}
		n.coord = nil
	}
	if n.shipper != nil {
		// Stop the shipping loop with a final pass now, before the
		// streaming server writes its closing snapshot...
		if err := n.shipper.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if n.stream != nil {
		if err := n.stream.Close(); err != nil && !errors.Is(err, stream.ErrEngineClosed) {
			errs = append(errs, err)
		}
		n.stream = nil
	}
	if n.shipper != nil {
		// ...and ship once more after it, so the replica holds the final
		// snapshot too.
		if err := n.shipper.SyncOnce(); err != nil {
			errs = append(errs, err)
		}
		n.shipper = nil
	}
	if n.store != nil {
		if err := n.store.Close(); err != nil && !errors.Is(err, streamstore.ErrClosed) {
			errs = append(errs, err)
		}
		n.store = nil
	}
	return errors.Join(errs...)
}
