package pptd_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pptd"
	"pptd/internal/obs"
)

// newWireNode starts a node hosting the streaming campaign with privacy
// accounting on, plus the batch campaign and (as a cluster worker) the
// cluster RPC routes — every POST route family in one front door.
func newWireNode(t *testing.T, extra ...pptd.Option) *httptest.Server {
	t.Helper()
	opts := append([]pptd.Option{
		pptd.WithName("wire-test"),
		pptd.WithBatchCampaign(4),
		pptd.WithStreamConfig(pptd.StreamConfig{
			NumObjects: 4,
			NumShards:  2,
			Lambda1:    1.5,
			Lambda2:    2,
			Delta:      0.3,
		}),
	}, extra...)
	n, err := pptd.NewNode(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(n.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := n.Close(); err != nil {
			t.Error(err)
		}
	})
	return ts
}

// TestCrossWireEquivalence drives the same submissions through two
// identical nodes — one client on the JSON wire, one on the binary
// frame — and demands indistinguishable outcomes: identical receipts,
// window results within 1e-9, and identical ingest counters on
// /metrics. The wire format is transport, never semantics.
func TestCrossWireEquivalence(t *testing.T) {
	ctx := context.Background()
	type run struct {
		wire     string
		receipts []pptd.StreamReceipt
		truths   []float64
		metrics  *obs.ParsedMetrics
	}
	runs := make([]*run, 0, 2)
	for _, wire := range []string{pptd.WireJSON, pptd.WireBinary} {
		ts := newWireNode(t)
		client, err := pptd.NewClient(ts.URL, pptd.WithClaimWire(wire))
		if err != nil {
			t.Fatal(err)
		}
		r := &run{wire: wire}
		for u := 0; u < 5; u++ {
			sub := pptd.CampaignSubmission{ClientID: fmt.Sprintf("device-%d", u)}
			for o := 0; o < 4; o++ {
				sub.Claims = append(sub.Claims, pptd.CampaignClaim{
					Object: o, Value: float64(u)*0.25 + float64(o)*1.5,
				})
			}
			receipt, err := client.StreamSubmit(ctx, sub)
			if err != nil {
				t.Fatalf("%s wire: submit %d: %v", wire, u, err)
			}
			r.receipts = append(r.receipts, receipt)
		}
		res, err := client.StreamCloseWindow(ctx)
		if err != nil {
			t.Fatalf("%s wire: close window: %v", wire, err)
		}
		r.truths = res.Truths

		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		p, err := obs.ParseText(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatalf("%s wire: parse /metrics: %v", wire, err)
		}
		r.metrics = p
		runs = append(runs, r)
	}

	jsonRun, binRun := runs[0], runs[1]
	for i := range jsonRun.receipts {
		if jsonRun.receipts[i] != binRun.receipts[i] {
			t.Errorf("receipt %d differs across wires: json %+v, binary %+v",
				i, jsonRun.receipts[i], binRun.receipts[i])
		}
	}
	if len(jsonRun.truths) != len(binRun.truths) {
		t.Fatalf("truths length differs: %d vs %d", len(jsonRun.truths), len(binRun.truths))
	}
	for o := range jsonRun.truths {
		if math.Abs(jsonRun.truths[o]-binRun.truths[o]) > 1e-9 {
			t.Errorf("object %d truth differs across wires: %v vs %v",
				o, jsonRun.truths[o], binRun.truths[o])
		}
	}
	for _, series := range []struct {
		name   string
		labels []string
	}{
		{"pptd_stream_claims_ingested_total", nil},
		{"pptd_http_requests_total", []string{"route", "/v1/stream/claims", "method", "POST", "code", "200"}},
	} {
		jv, jerr := jsonRun.metrics.Value(series.name, series.labels...)
		bv, berr := binRun.metrics.Value(series.name, series.labels...)
		if jerr != nil || berr != nil {
			t.Fatalf("%s%v: json err %v, binary err %v", series.name, series.labels, jerr, berr)
		}
		if jv != bv {
			t.Errorf("%s%v differs across wires: json %v, binary %v", series.name, series.labels, jv, bv)
		}
	}
}

// TestMaxRequestBytes413 aims an oversized body at each POST route
// family — stream claims (both wires), batch submissions, and the
// cluster close RPC — and requires the 413 payload_too_large envelope
// from every one of them, plus the typed sentinel from the client.
func TestMaxRequestBytes413(t *testing.T) {
	const cap = 4096
	ts := newWireNode(t, pptd.WithMaxRequestBytes(cap), pptd.WithClusterWorker())

	big := strings.Repeat("x", 2*cap)
	post := func(path, contentType, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	assert413 := func(label string, resp *http.Response) {
		t.Helper()
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status = %d, want 413", label, resp.StatusCode)
		}
		var body pptd.APIErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: decode envelope: %v", label, err)
		}
		if body.Code != "payload_too_large" {
			t.Errorf("%s: envelope code = %q, want payload_too_large", label, body.Code)
		}
	}

	assert413("stream claims (json)", post("/v1/stream/claims", "application/json",
		`{"clientId":"`+big+`","claims":[{"object":0,"value":1}]}`))
	// A frame whose header promises a payload past the cap: the decoder
	// must surface the body-cap hit as 413, not a generic bad frame.
	bigFrame := append([]byte("PTDC\x01"), byte(2*cap&0xFF), byte(2*cap>>8), 0, 0, 0, 0, 0, 0)
	bigFrame = append(bigFrame, big...)
	assert413("stream claims (binary)", post("/v1/stream/claims", pptd.ContentTypeClaims, string(bigFrame)))
	assert413("batch submissions", post("/v1/submissions", "application/json",
		`{"clientId":"`+big+`","claims":[{"object":0,"value":1}]}`))
	assert413("cluster close", post("/v1/cluster/close", "application/json",
		`{"window":1,"junk":"`+big+`"}`))

	// The client decodes the envelope into the typed sentinel.
	client, err := pptd.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	sub := pptd.CampaignSubmission{ClientID: "big-batch"}
	for o := 0; o < 4; o++ {
		sub.Claims = append(sub.Claims, pptd.CampaignClaim{Object: o, Value: 1})
	}
	sub.ClientID += strings.Repeat("x", 2*cap)
	if _, err := client.StreamSubmit(context.Background(), sub); !errors.Is(err, pptd.ErrPayloadTooLarge) {
		t.Errorf("oversized StreamSubmit err = %v, want ErrPayloadTooLarge", err)
	}

	// A binary frame within the cap still works on the capped node.
	okClient, err := pptd.NewClient(ts.URL, pptd.WithClaimWire(pptd.WireBinary))
	if err != nil {
		t.Fatal(err)
	}
	small := pptd.CampaignSubmission{ClientID: "small"}
	for o := 0; o < 4; o++ {
		small.Claims = append(small.Claims, pptd.CampaignClaim{Object: o, Value: float64(o)})
	}
	receipt, err := okClient.StreamSubmit(context.Background(), small)
	if err != nil {
		t.Fatalf("in-cap binary submit on capped node: %v", err)
	}
	if receipt.Accepted != 4 {
		t.Errorf("accepted = %d, want 4", receipt.Accepted)
	}
}

// TestWireFrameContentTypeNegotiation checks the server-side switch: a
// JSON body under the binary content type is a 400 bad frame, and a
// binary frame under the default JSON decoder is a 400 bad request —
// never a misparse.
func TestWireFrameContentTypeNegotiation(t *testing.T) {
	ts := newWireNode(t)
	for _, tc := range []struct {
		label       string
		contentType string
		body        string
	}{
		{"json body, binary content type", pptd.ContentTypeClaims, `{"clientId":"a","claims":[{"object":0,"value":1}]}`},
		{"garbage, binary content type", pptd.ContentTypeClaims + ";v=1", "not a frame"},
	} {
		resp, err := http.Post(ts.URL+"/v1/stream/claims", tc.contentType, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var body pptd.APIErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: decode envelope: %v", tc.label, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || body.Code != "bad_request" {
			t.Errorf("%s: got status %d code %q, want 400 bad_request", tc.label, resp.StatusCode, body.Code)
		}
	}
}
