package pptd

import "pptd/internal/eval"

// Experiment is a registered reproduction target (one per paper figure,
// plus ablations).
type Experiment = eval.Experiment

// ExperimentOptions control an experiment run.
type ExperimentOptions = eval.Options

// ExperimentReport is the output of one experiment.
type ExperimentReport = eval.Report

// ExperimentFigure is one regenerated plot.
type ExperimentFigure = eval.Figure

// ExperimentTable is an aligned text table.
type ExperimentTable = eval.Table

// Experiments lists every registered experiment: fig2..fig8 matching the
// paper's evaluation section, plus ablations beyond the paper.
func Experiments() []Experiment { return eval.Registry() }

// RunExperiment looks up an experiment by name (e.g. "fig2") and runs it.
func RunExperiment(name string, opts ExperimentOptions) (*ExperimentReport, error) {
	exp, err := eval.Lookup(name)
	if err != nil {
		return nil, err
	}
	return exp.Run(opts)
}
