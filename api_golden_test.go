package pptd_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api.golden from the current exported surface")

// TestAPIGolden pins the package's exported surface to a golden file: a
// sorted, source-derived rendering of every exported const, var, type,
// and function declaration. An accidental breaking change — a removed
// symbol, a changed signature, a narrowed type — shows up as a diff and
// fails CI (the api-compat job). Intentional changes regenerate with
//
//	go test -run TestAPIGolden . -update
func TestAPIGolden(t *testing.T) {
	got := renderExportedSurface(t, ".")
	goldenPath := filepath.Join("testdata", "api.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	// Pinpoint the first divergence line for a readable failure.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("exported API surface drifted at line %d:\n  golden: %s\n  now:    %s\n"+
				"If this change is intentional, regenerate with: go test -run TestAPIGolden . -update",
				i+1, w, g)
		}
	}
	t.Fatal("exported API surface drifted (length mismatch); regenerate with -update if intentional")
}

// renderExportedSurface parses the package's non-test sources and
// renders every exported declaration, sorted, comments stripped — a
// deterministic fingerprint of the public API.
func renderExportedSurface(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["pptd"]
	if !ok {
		t.Fatalf("package pptd not found in %s (have %v)", dir, pkgs)
	}

	var entries []string
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	render := func(node any) string {
		var buf bytes.Buffer
		if err := cfg.Fprint(&buf, fset, node); err != nil {
			t.Fatalf("render decl: %v", err)
		}
		return buf.String()
	}

	names := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, decl := range pkg.Files[name].Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Recv != nil {
					// Methods of re-exported (aliased) internal types are
					// not declared here; top-level funcs are the surface.
					continue
				}
				fn := *d
				fn.Doc, fn.Body = nil, nil
				entries = append(entries, render(&fn))
			case *ast.GenDecl:
				specs := exportedSpecs(d)
				if len(specs) == 0 {
					continue
				}
				gd := *d
				gd.Doc = nil
				gd.Specs = specs
				// Force the one-spec form to not depend on grouping.
				if len(specs) == 1 {
					gd.Lparen, gd.Rparen = token.NoPos, token.NoPos
				}
				for _, s := range specs {
					entries = append(entries, render(&ast.GenDecl{Tok: gd.Tok, Specs: []ast.Spec{s}}))
				}
			}
		}
	}
	sort.Strings(entries)
	var b strings.Builder
	fmt.Fprintf(&b, "// Exported surface of package pptd. Regenerate: go test -run TestAPIGolden . -update\n")
	for _, e := range entries {
		b.WriteString(e)
		b.WriteString("\n")
	}
	return b.String()
}

// exportedSpecs filters a const/var/type decl down to its exported
// specs, stripping docs (deprecation notices live in docs, not in the
// compatibility fingerprint).
func exportedSpecs(d *ast.GenDecl) []ast.Spec {
	var out []ast.Spec
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() {
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				out = append(out, &ts)
			}
		case *ast.ValueSpec:
			exported := false
			for _, n := range s.Names {
				if n.IsExported() {
					exported = true
				}
			}
			if exported {
				vs := *s
				vs.Doc, vs.Comment = nil, nil
				out = append(out, &vs)
			}
		}
	}
	return out
}
