package pptd_test

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pptd"
)

func TestNodeClusterOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []pptd.Option
		want string
	}{
		{
			name: "cluster worker needs a stream engine",
			opts: []pptd.Option{pptd.WithBatchCampaign(3), pptd.WithLambda2(1), pptd.WithClusterWorker()},
			want: "WithClusterWorker requires a stream engine",
		},
		{
			name: "cluster worker vs window interval",
			opts: []pptd.Option{pptd.WithStreamEngine(3), pptd.WithClusterWorker(), pptd.WithWindowInterval(time.Second)},
			want: "coordinator drives window closes",
		},
		{
			name: "coordinator needs a stream engine config",
			opts: []pptd.Option{pptd.WithBatchCampaign(3), pptd.WithLambda2(1), pptd.WithClusterCoordinator("http://w0")},
			want: "WithClusterCoordinator requires a stream engine",
		},
		{
			name: "coordinator with no workers",
			opts: []pptd.Option{pptd.WithStreamEngine(3), pptd.WithClusterCoordinator()},
			want: "no workers",
		},
		{
			name: "coordinator vs persistence",
			opts: []pptd.Option{pptd.WithStreamEngine(3), pptd.WithClusterCoordinator("http://w0"), pptd.WithPersistence(t.TempDir())},
			want: "WithClusterCoordinator conflicts with WithPersistence",
		},
		{
			name: "shipping needs persistence",
			opts: []pptd.Option{pptd.WithStreamEngine(3), pptd.WithSegmentShipping(t.TempDir())},
			want: "WithSegmentShipping requires WithPersistence",
		},
		{
			name: "shipping interval needs shipping",
			opts: []pptd.Option{pptd.WithStreamEngine(3), pptd.WithShippingInterval(time.Second)},
			want: "WithShippingInterval requires WithSegmentShipping",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := pptd.NewNode(tc.opts...)
			if err == nil {
				_ = n.Close()
				t.Fatalf("NewNode accepted %s", tc.name)
			}
			if !errors.Is(err, pptd.ErrNodeConfig) {
				t.Fatalf("err = %v, want ErrNodeConfig", err)
			}
			if got := err.Error(); !strings.Contains(got, tc.want) {
				t.Fatalf("err = %q, want mention of %q", got, tc.want)
			}
		})
	}
}

// TestNodeCluster drives the whole multi-node path through the public
// Node API: two durable worker nodes with segment shipping, a
// coordinator node routing ingest and closing windows, and the
// coordinator's published truths matching a single-node engine.
func TestNodeCluster(t *testing.T) {
	const numObjects = 4
	shipDirs := make([]string, 2)
	workers := make([]*pptd.Node, 2)
	servers := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range workers {
		shipDirs[i] = filepath.Join(t.TempDir(), "replica")
		w, err := pptd.NewNode(
			pptd.WithName("shard"),
			pptd.WithStreamEngine(numObjects),
			pptd.WithClusterWorker(),
			pptd.WithPersistence(t.TempDir()),
			pptd.WithSegmentShipping(shipDirs[i]),
			pptd.WithShippingInterval(time.Hour), // shipped explicitly below
		)
		if err != nil {
			t.Fatalf("worker node %d: %v", i, err)
		}
		defer func() { _ = w.Close() }()
		workers[i] = w
		servers[i] = httptest.NewServer(w.Handler())
		defer servers[i].Close()
		urls[i] = servers[i].URL
	}

	coordNode, err := pptd.NewNode(
		pptd.WithName("front"),
		pptd.WithStreamEngine(numObjects),
		pptd.WithClusterCoordinator(urls...),
	)
	if err != nil {
		t.Fatalf("coordinator node: %v", err)
	}
	defer func() { _ = coordNode.Close() }()
	if coordNode.Coordinator() == nil {
		t.Fatal("Coordinator() = nil on a coordinator node")
	}
	if coordNode.Stream() != nil {
		t.Fatal("coordinator node hosts a local stream engine")
	}

	ref, err := pptd.NewStreamEngine(pptd.StreamConfig{NumObjects: numObjects})
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	defer func() { _ = ref.Close() }()

	front := httptest.NewServer(coordNode.Handler())
	defer front.Close()
	client, err := pptd.NewClient(front.URL)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	ctx := context.Background()

	users := []string{"ada", "grace", "edsger", "barbara", "donald"}
	for u, id := range users {
		claims := make([]pptd.StreamClaim, 0, numObjects)
		for o := 0; o < numObjects; o++ {
			claims = append(claims, pptd.StreamClaim{Object: o, Value: float64(u*numObjects + o)})
		}
		if _, _, err := ref.Ingest(id, claims); err != nil {
			t.Fatalf("reference ingest: %v", err)
		}
		wire := make([]pptd.CampaignClaim, len(claims))
		for i, c := range claims {
			wire[i] = pptd.CampaignClaim{Object: c.Object, Value: c.Value}
		}
		if _, err := client.StreamSubmit(ctx, pptd.CampaignSubmission{ClientID: id, Claims: wire}); err != nil {
			t.Fatalf("cluster submit %s: %v", id, err)
		}
	}
	refRes, err := ref.CloseWindow()
	if err != nil {
		t.Fatalf("reference close: %v", err)
	}
	got, err := client.StreamCloseWindow(ctx)
	if err != nil {
		t.Fatalf("cluster close: %v", err)
	}
	if got.Window != refRes.Window {
		t.Fatalf("cluster closed window %d, reference %d", got.Window, refRes.Window)
	}
	for o, want := range refRes.Truths {
		if math.Abs(got.Truths[o]-want) > 1e-9 {
			t.Fatalf("object %d: cluster truth %v, single-node %v", o, got.Truths[o], want)
		}
	}

	// Ship both workers and check each replica is a recoverable store
	// holding the closed window's snapshot.
	for i, w := range workers {
		if w.Shipper() == nil {
			t.Fatal("Shipper() = nil on a shipping node")
		}
		if err := w.Shipper().SyncOnce(); err != nil {
			t.Fatalf("ship worker %d: %v", i, err)
		}
		replica, err := pptd.NewNode(
			pptd.WithStreamEngine(numObjects),
			pptd.WithPersistence(shipDirs[i]),
		)
		if err != nil {
			t.Fatalf("open replica %d: %v", i, err)
		}
		if got := replica.Stream().Engine().Window(); got != 1 {
			_ = replica.Close()
			t.Fatalf("replica %d recovered at %d closed windows, want 1", i, got)
		}
		if err := replica.Close(); err != nil {
			t.Fatalf("close replica %d: %v", i, err)
		}
	}
}
