package pptd

import "pptd/internal/categorical"

// CategoricalDataset is a sparse user-by-object matrix of categorical
// claims over K categories — the claim type handled by the paper's
// companion mechanism (Li et al., KDD'18), provided here as an extension.
type CategoricalDataset = categorical.Dataset

// CategoricalClaim is one categorical answer.
type CategoricalClaim = categorical.Claim

// CategoricalBuilder accumulates categorical claims.
type CategoricalBuilder = categorical.Builder

// NewCategoricalBuilder returns a builder for a numUsers x numObjects
// dataset over numCategories categories.
func NewCategoricalBuilder(numUsers, numObjects, numCategories int) *CategoricalBuilder {
	return categorical.NewBuilder(numUsers, numObjects, numCategories)
}

// CategoricalResult is the output of categorical truth discovery.
type CategoricalResult = categorical.Result

// VotingOption configures NewWeightedVoting.
type VotingOption = categorical.VotingOption

// NewWeightedVoting returns iterative weighted-voting truth discovery for
// categorical claims (the categorical counterpart of CRH).
func NewWeightedVoting(opts ...VotingOption) (*categorical.Voting, error) {
	return categorical.NewVoting(opts...)
}

// WithUnweightedVoting reduces the method to plain majority voting.
func WithUnweightedVoting() VotingOption { return categorical.WithUnweightedVoting() }

// RandomizedResponse is the k-ary randomized response mechanism giving
// pure epsilon-LDP for categorical claims.
type RandomizedResponse = categorical.RandomizedResponse

// NewRandomizedResponse returns the mechanism for K categories at the
// given epsilon.
func NewRandomizedResponse(eps float64, numCategories int) (*RandomizedResponse, error) {
	return categorical.NewRandomizedResponse(eps, numCategories)
}

// CategoricalAccuracy returns the fraction of objects whose discovered
// truth matches the reference.
func CategoricalAccuracy(truths, reference []int) (float64, error) {
	return categorical.Accuracy(truths, reference)
}
